// Targeted GT-Verify tests (Theorem 2): hand-constructed dominance
// configurations exercising each case of the theorem, the Fig. 6b
// divide-and-conquer recovery, and sampled-instance soundness of accepted
// tiles under adversarial region shapes.
#include <gtest/gtest.h>

#include "index/gnn.h"
#include "mpn/tile_verify.h"
#include "mpn/verify.h"
#include "msr_test_util.h"
#include "util/rng.h"

namespace mpn {
namespace {

// Builds a region holding the listed cells at level 0.
TileRegion RegionWith(const Point& user, double delta,
                      std::initializer_list<std::pair<int, int>> cells) {
  TileRegion r(user, delta);
  for (const auto& [ix, iy] : cells) r.Add(GridTile{0, ix, iy});
  return r;
}

TEST(GtVerifyTest, SingleUserReducesToLemma1) {
  // m = 1: the tile is safe iff maxdist(po, s) <= mindist(p, s).
  std::vector<TileRegion> regions;
  regions.push_back(RegionWith({0, 0}, 2.0, {{0, 0}}));
  MaxGtVerifier gt;
  const Point po{0, 0};
  const Candidate far{1, {100, 0}};
  // maxdist(po, s) = sqrt(2) ~ 1.414; candidate at x=2 has mindist 1.0.
  const Candidate near{2, {2.0, 0}};
  const Rect s = regions[0].TileRect(GridTile{0, 0, 0});  // [-1,1]^2
  EXPECT_TRUE(gt.VerifyTile(regions, 0, s, far, po));
  EXPECT_FALSE(gt.VerifyTile(regions, 0, s, near, po));
}

TEST(GtVerifyTest, Figure6bSplitRecovery) {
  // The Fig. 6b phenomenon: a wide tile fails the conservative per-tile
  // test because its min and max distances are realized by different
  // corners, yet geometrically every point of (part of) the tile keeps po
  // optimal; recursive splitting recovers sub-tiles. Single user at the
  // origin; po = (-6,0), p = (6.5,0) -> bisector at x = 0.25.
  std::vector<TileRegion> regions;
  regions.push_back(RegionWith({0, 0}, 8.0, {}));  // anchor only
  const Point po{-6, 0};
  const Candidate p{7, {6.5, 0}};
  MaxGtVerifier gt;
  // Level 0, [-4,4]^2: do = dist(po,(4,±4)) ~ 10.77 > dp = 2.5 -> reject.
  const Rect wide = regions[0].TileRect(GridTile{0, 0, 0});
  EXPECT_FALSE(gt.VerifyTile(regions, 0, wide, p, po));
  // Level 1 west quadrant [-4,0]x[-4,0]: every point is strictly closer to
  // po than to p (x < 0.25), but the conservative test still fails
  // (do = 7.21 from corner (0,±4) vs dp = 6.5 from corner (0,0)).
  const Rect west = regions[0].TileRect(GridTile{1, 0, 0});
  for (double x : {-4.0, -2.0, 0.0}) {
    for (double y : {-4.0, -2.0, 0.0}) {
      EXPECT_LT(Dist(po, {x, y}), Dist(p.p, {x, y}));
    }
  }
  EXPECT_FALSE(gt.VerifyTile(regions, 0, west, p, po));
  // Level 2, [-2,0]x[-2,0]: do = 6.32 <= dp = 6.5 -> accepted. Exactly the
  // divide-and-conquer recovery of Algorithm 2.
  const Rect grand = regions[0].TileRect(GridTile{2, 1, 1});
  EXPECT_TRUE(gt.VerifyTile(regions, 0, grand, p, po));
}

TEST(GtVerifyTest, OtherUserDominanceGrantsSlack) {
  // Case 2/3 of Theorem 2: user 0's tile would fail the pure Lemma-1
  // check against its own do/dp, but because user 1 dominates both po and
  // p at a large distance, the tile is still safe.
  const Point u0{0, 0};
  const Point u1{50, 0};
  std::vector<TileRegion> regions;
  regions.push_back(RegionWith(u0, 1.0, {{0, 0}}));
  regions.push_back(RegionWith(u1, 1.0, {{0, 0}}));
  const Point po{40, 0};   // near u1; u1 dominates po's distance
  const Candidate p{3, {-30, 0}};  // near-ish u0's side; u1 dominates p too
  MaxGtVerifier gt;
  // Tile for user 0 slightly toward po.
  const Rect s = regions[0].TileRect(GridTile{0, 1, 0});  // [0.5,1.5]^2-ish
  // Sanity: the naive single-user condition fails (maxdist(po,s) >
  // mindist(p,s) is false here? compute: maxdist(po from [0.5,1.5]x[-.5,.5])
  // = dist((40,0),(0.5,+-0.5)) ~ 39.5; mindist(p,s) = dist((-30,0),(0.5,..))
  // ~ 30.5; 39.5 > 30.5 so the per-tile condition fails...
  EXPECT_GT(s.MaxDist(po), s.MinDist(p.p));
  // ...but u1's distances dominate both sides: ||po,R1||max ~ 10+
  // and ||p,R1||min ~ 79-, so the group stays valid and GT accepts.
  EXPECT_TRUE(gt.VerifyTile(regions, 0, s, p, po));
}

TEST(GtVerifyTest, AcceptedTilesAreSoundOnSampledInstances) {
  // GT-Verify's contract (Theorem 2) assumes the existing region group is
  // already valid w.r.t. (po, p). We maintain that premise by growing the
  // regions only through GT-accepted tiles, then check every subsequently
  // accepted tile against sampled instances of the full group space.
  Rng rng(97531);
  size_t accepted = 0;
  for (int trial = 0; trial < 150; ++trial) {
    MaxGtVerifier gt;
    const size_t m = 2 + trial % 2;
    std::vector<Point> users;
    std::vector<TileRegion> regions;
    for (size_t i = 0; i < m; ++i) {
      users.push_back({rng.Uniform(0, 60), rng.Uniform(0, 60)});
      regions.emplace_back(users[i], rng.Uniform(1.0, 4.0));
      regions.back().Add(GridTile{0, 0, 0});
    }
    const Point po{rng.Uniform(0, 60), rng.Uniform(0, 60)};
    const Candidate cand{1, {rng.Uniform(0, 60), rng.Uniform(0, 60)}};
    // Premise: the initial group must be valid for (po, cand); skip
    // configurations where it is not (the engine would never create them).
    {
      std::vector<SafeRegion> sr;
      for (const auto& r : regions) sr.push_back(SafeRegion::MakeTiles(r));
      bool initial_valid = true;
      for (int probe = 0; probe < 200 && initial_valid; ++probe) {
        double d_po = 0.0, d_c = 0.0;
        for (size_t j = 0; j < m; ++j) {
          const Point l = testutil::SampleRegion(sr[j], &rng);
          d_po = std::max(d_po, Dist(po, l));
          d_c = std::max(d_c, Dist(cand.p, l));
        }
        initial_valid = d_po <= d_c + 1e-9;
      }
      if (!initial_valid) continue;
      // Also require the conservative initial check so the premise holds
      // for *all* instances, not just the sampled ones.
      if (!VerifyLemma1(sr, po, cand.p)) continue;
    }
    // Grow via GT-accepted tiles only (premise preserved), then validate.
    for (int step = 0; step < 12; ++step) {
      const size_t ui = static_cast<size_t>(rng.UniformInt(0, m - 1));
      const GridTile tile{static_cast<int32_t>(rng.UniformInt(0, 1)),
                          static_cast<int32_t>(rng.UniformInt(-3, 3)),
                          static_cast<int32_t>(rng.UniformInt(-3, 3))};
      const Rect s = regions[ui].TileRect(tile);
      if (!gt.VerifyTile(regions, ui, s, cand, po)) continue;
      ++accepted;
      for (int inst = 0; inst < 25; ++inst) {
        double d_po = 0.0, d_c = 0.0;
        for (size_t j = 0; j < m; ++j) {
          Point l;
          if (j == ui) {
            l = {rng.Uniform(s.lo.x, s.hi.x), rng.Uniform(s.lo.y, s.hi.y)};
          } else {
            const auto& rects = regions[j].rects();
            const Rect& rr = rects[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(rects.size()) - 1))];
            l = {rng.Uniform(rr.lo.x, rr.hi.x), rng.Uniform(rr.lo.y, rr.hi.y)};
          }
          d_po = std::max(d_po, Dist(po, l));
          d_c = std::max(d_c, Dist(cand.p, l));
        }
        ASSERT_LE(d_po, d_c + 1e-9)
            << "GT accepted an unsafe tile (trial " << trial << ")";
      }
      regions[ui].Add(tile);  // commit: premise stays valid
    }
  }
  EXPECT_GT(accepted, 50u);  // the accepting branch must be exercised
}

TEST(GtVerifyTest, SoAKernelMatchesScalarOnRandomScenes) {
  // The SoA lane kernel must make the bit-identical decision of the scalar
  // AoS walk for every (regions, tile, candidate, po) — including the
  // threshold-based squared-distance comparisons (see SqrtLtThreshold) and
  // the near-tie geometries that rounding could otherwise flip.
  Rng rng(0x50A);
  size_t accepted = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const size_t m = 1 + static_cast<size_t>(trial % 4);
    std::vector<TileRegion> regions;
    for (size_t i = 0; i < m; ++i) {
      regions.emplace_back(Point{rng.Uniform(0, 60), rng.Uniform(0, 60)},
                           rng.Uniform(1.0, 4.0));
      const int tiles = static_cast<int>(rng.UniformInt(1, 6));
      for (int t = 0; t < tiles; ++t) {
        regions.back().Add(GridTile{static_cast<int32_t>(rng.UniformInt(0, 1)),
                                    static_cast<int32_t>(rng.UniformInt(-3, 3)),
                                    static_cast<int32_t>(rng.UniformInt(-3, 3))});
      }
    }
    const Point po{rng.Uniform(0, 60), rng.Uniform(0, 60)};
    const size_t ui = static_cast<size_t>(rng.UniformInt(0, m - 1));
    const Rect s = regions[ui].TileRect(
        GridTile{0, static_cast<int32_t>(rng.UniformInt(-4, 4)),
                 static_cast<int32_t>(rng.UniformInt(-4, 4))});
    MaxGtVerifier gt;
    Arena arena;
    const TileLanes lanes = BuildTileLanes(regions, s, po, &arena);
    for (int c = 0; c < 24; ++c) {
      Candidate cand{static_cast<uint32_t>(c), {}};
      if (c % 3 == 0) {
        // Exact-tie geometry: candidate at po (d_p relations degenerate).
        cand.p = po;
      } else {
        cand.p = {rng.Uniform(0, 60), rng.Uniform(0, 60)};
      }
      VerifyStats scalar_stats, soa_stats;
      const bool a =
          gt.VerifyTileThreadSafe(regions, ui, s, cand, po, &scalar_stats);
      const bool b = gt.VerifyTileLanes(lanes, ui, s, cand, &soa_stats);
      ASSERT_EQ(a, b) << "kernel divergence (trial " << trial << ", cand "
                      << c << ")";
      ASSERT_EQ(scalar_stats.calls, soa_stats.calls);
      ASSERT_EQ(scalar_stats.accepted, soa_stats.accepted);
      if (a) ++accepted;
    }
  }
  EXPECT_GT(accepted, 100u);  // both branches must be exercised
}

TEST(GtVerifyTest, StatsCountCallsAndAcceptances) {
  std::vector<TileRegion> regions;
  regions.push_back(RegionWith({0, 0}, 2.0, {{0, 0}}));
  MaxGtVerifier gt;
  const Rect s = regions[0].TileRect(GridTile{0, 0, 0});
  gt.VerifyTile(regions, 0, s, {1, {100, 0}}, {0, 0});   // accept
  gt.VerifyTile(regions, 0, s, {2, {2.2, 0}}, {0, 0});   // reject
  EXPECT_EQ(gt.stats().calls, 2u);
  EXPECT_EQ(gt.stats().accepted, 1u);
}

TEST(ItVerifyTest, CountsTileGroups) {
  std::vector<TileRegion> regions;
  regions.push_back(RegionWith({0, 0}, 2.0, {{0, 0}, {0, 1}}));   // 2 tiles
  regions.push_back(RegionWith({10, 0}, 2.0, {{0, 0}, {1, 0}, {0, 1}}));  // 3
  MaxItVerifier it;
  const Rect s = regions[0].TileRect(GridTile{0, -1, 0});
  it.VerifyTile(regions, 0, s, {1, {200, 0}}, {0, 0});
  // Groups enumerated: |R_1| = 3 (user 0 pinned to s).
  EXPECT_EQ(it.stats().tile_groups, 3u);
  it.VerifyTile(regions, 1, regions[1].TileRect(GridTile{0, -1, 0}),
                {1, {200, 0}}, {0, 0});
  EXPECT_EQ(it.stats().tile_groups, 3u + 2u);
}

TEST(SumVerifierTest, AcceptsWhenSumSlackExists) {
  // Two users; po central; candidate farther on aggregate. The hyperbola
  // verification must accept a tile that the conservative sum-of-bounds
  // test (VerifySumConservative semantics) would reject.
  const Point po{0, 0};
  std::vector<TileRegion> regions;
  regions.push_back(RegionWith({-5, 0}, 2.0, {{0, 0}}));
  regions.push_back(RegionWith({5, 0}, 2.0, {{0, 0}}));
  SumHyperbolaVerifier sum(po, 2);
  // Candidate on the far right: user 0 loses a lot by switching, user 1
  // gains little -> sum stays in po's favor even at tile extremes.
  const Candidate cand{1, {12, 0}};
  const Rect s = regions[0].TileRect(GridTile{0, 1, 0});
  EXPECT_TRUE(sum.VerifyTile(regions, 0, s, cand, po));
  // A candidate just right of po with users shifted right flips the sum.
  const Candidate tight{2, {1.0, 0}};
  const Rect far_right = regions[0].TileRect(GridTile{0, 3, 0});
  EXPECT_FALSE(sum.VerifyTile(regions, 0, far_right, tight, po));
}

TEST(SumVerifierTest, MemoizationIsConsistentAcrossCommits) {
  // Memo hits must return the same value a cold computation returns, even
  // after regions grow through commits.
  Rng rng(24680);
  const Point po{30, 30};
  std::vector<TileRegion> regions;
  regions.push_back(RegionWith({20, 30}, 3.0, {{0, 0}}));
  regions.push_back(RegionWith({40, 30}, 3.0, {{0, 0}}));
  SumHyperbolaVerifier memoized(po, 2);
  const Candidate cand{5, {55, 31}};
  // First pass fills the memo for user 1.
  const Rect s1 = regions[0].TileRect(GridTile{0, 1, 0});
  (void)memoized.VerifyTile(regions, 0, s1, cand, po);
  // Grow user 1's region through the proper commit path.
  const Rect s2 = regions[1].TileRect(GridTile{0, -1, 0});
  const bool ok = memoized.VerifyTile(regions, 1, s2, cand, po);
  if (ok) {
    regions[1].Add(GridTile{0, -1, 0});
    memoized.OnCommitted(1, regions[1].size());
  }
  // A fresh verifier (no memo) must agree with the memoized one on the
  // next query.
  SumHyperbolaVerifier cold(po, 2);
  const Rect s3 = regions[0].TileRect(GridTile{0, 0, 1});
  EXPECT_EQ(memoized.VerifyTile(regions, 0, s3, cand, po),
            cold.VerifyTile(regions, 0, s3, cand, po));
  EXPECT_GT(memoized.stats().memo_hits, 0u);
}

}  // namespace
}  // namespace mpn
