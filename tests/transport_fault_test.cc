// Hardened-transport tests (ctest label `cluster`): frame integrity
// (magic/version/CRC32 header, typed FrameError), per-operation deadlines,
// both byte backends (AF_UNIX socketpair and loopback TCP), deterministic
// fault injection (FaultPlan / InjectFaultAt / MPN_FAULT_PLAN) and the
// coordinator's liveness machinery — every injected fault kind, and a
// SIGSTOPped (hung-but-alive) worker caught by the heartbeat miss budget,
// must recover to a ResultDigest() bit-identical to an uninterrupted
// single-process Engine, with the new RecoveryStats counters attributing
// what happened. See docs/ARCHITECTURE.md §5d.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/cluster.h"
#include "engine/engine.h"
#include "engine/ipc.h"
#include "engine/transport.h"
#include "traj/generators.h"
#include "util/rng.h"

namespace mpn {
namespace {

const Rect kWorld({0, 0}, {20000, 20000});

struct World {
  std::vector<Point> pois;
  RTree tree;
  std::vector<Trajectory> trajs;
};

World MakeWorld(size_t n_pois, size_t n_groups, size_t timestamps,
                uint64_t seed) {
  World w;
  Rng rng(seed);
  PoiOptions popt;
  popt.world = kWorld;
  popt.clusters = 12;
  w.pois = GeneratePois(n_pois, popt, &rng);
  w.tree = RTree::BulkLoad(w.pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = 60.0;
  const RandomWalkGenerator gen(wopt);
  w.trajs = gen.GenerateGroupedFleet(n_groups * 3, 3, 500.0, timestamps, &rng);
  return w;
}

std::vector<const Trajectory*> GroupOf(const World& w, size_t g) {
  return {&w.trajs[3 * g], &w.trajs[3 * g + 1], &w.trajs[3 * g + 2]};
}

EngineOptions MakeEngineOptions(size_t threads) {
  EngineOptions opt;
  opt.threads = threads;
  opt.sim.server.method = Method::kTileD;
  opt.sim.server.alpha = 10;
  return opt;
}

constexpr FaultKind kAllKinds[] = {FaultKind::kShortIo, FaultKind::kEintrStorm,
                                   FaultKind::kCorrupt, FaultKind::kTruncate,
                                   FaultKind::kStall, FaultKind::kReset};

// --- FaultKind names / Crc32 -------------------------------------------------

TEST(Crc32Test, MatchesIeee8023KnownAnswer) {
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(Crc32(check, 0), 0u);  // empty message: init ^ final-xor
  // One-bit sensitivity: flipping any payload bit must move the CRC.
  uint8_t dirty[sizeof(check)];
  std::copy(check, check + sizeof(check), dirty);
  dirty[4] ^= 0x01;
  EXPECT_NE(Crc32(dirty, sizeof(dirty)), Crc32(check, sizeof(check)));
}

TEST(FaultKindTest, NamesRoundTripAndUnknownNamesThrow) {
  for (const FaultKind k : kAllKinds) {
    EXPECT_EQ(ParseFaultKind(FaultKindName(k)), k);
  }
  EXPECT_THROW(ParseFaultKind("bogus"), std::runtime_error);
  EXPECT_THROW(ParseFaultKind(""), std::runtime_error);
}

TEST(FaultKindTest, FatalKindsAreTheFrameLevelOnes) {
  EXPECT_FALSE(FaultPlan::IsFatal(FaultKind::kShortIo));
  EXPECT_FALSE(FaultPlan::IsFatal(FaultKind::kEintrStorm));
  EXPECT_TRUE(FaultPlan::IsFatal(FaultKind::kCorrupt));
  EXPECT_TRUE(FaultPlan::IsFatal(FaultKind::kTruncate));
  EXPECT_TRUE(FaultPlan::IsFatal(FaultKind::kStall));
  EXPECT_TRUE(FaultPlan::IsFatal(FaultKind::kReset));
}

// --- FaultPlan parsing + per-incarnation batching ----------------------------

TEST(FaultPlanTest, ParsesSpecAndConsumesFifoPerShard) {
  FaultPlan plan = FaultPlan::Parse(" 0:3:corrupt, 1:5:stall ,0:7:reset,");
  ASSERT_EQ(plan.events.size(), 3u);

  // Shard 0's first batch ends at its first fatal kind (corrupt).
  std::vector<FaultPlan::Event> batch = plan.TakeIncarnation(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].frame, 3u);
  EXPECT_EQ(batch[0].kind, FaultKind::kCorrupt);
  // The second incarnation gets the next event.
  batch = plan.TakeIncarnation(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].frame, 7u);
  EXPECT_EQ(batch[0].kind, FaultKind::kReset);
  EXPECT_TRUE(plan.TakeIncarnation(0).empty());

  batch = plan.TakeIncarnation(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].kind, FaultKind::kStall);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, NonFatalKindsRideWithTheirIncarnationsFatal) {
  FaultPlan plan =
      FaultPlan::Parse("0:1:short,0:2:eintr,0:3:corrupt,0:4:reset");
  std::vector<FaultPlan::Event> batch = plan.TakeIncarnation(0);
  ASSERT_EQ(batch.size(), 3u);  // short + eintr + the fatal corrupt
  EXPECT_EQ(batch[0].kind, FaultKind::kShortIo);
  EXPECT_EQ(batch[1].kind, FaultKind::kEintrStorm);
  EXPECT_EQ(batch[2].kind, FaultKind::kCorrupt);
  batch = plan.TakeIncarnation(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].kind, FaultKind::kReset);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, MalformedSpecsFailLoudly) {
  EXPECT_THROW(FaultPlan::Parse("0:1"), std::runtime_error);
  EXPECT_THROW(FaultPlan::Parse("0:1:bogus"), std::runtime_error);
  EXPECT_THROW(FaultPlan::Parse("a:1:stall"), std::runtime_error);
  EXPECT_THROW(FaultPlan::Parse("0:x:corrupt"), std::runtime_error);
  EXPECT_THROW(FaultPlan::Parse(":1:corrupt"), std::runtime_error);
  EXPECT_THROW(FaultPlan::Parse("0:1:"), std::runtime_error);
  EXPECT_TRUE(FaultPlan::Parse("").empty());
}

TEST(FaultPlanTest, SeededPlansAreDeterministicAndInBounds) {
  const FaultPlan a = FaultPlan::FromSeed(42, 4);
  const FaultPlan b = FaultPlan::FromSeed(42, 4);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_GE(a.events.size(), 1u);
  ASSERT_LE(a.events.size(), 2u);
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].shard, b.events[i].shard);
    EXPECT_EQ(a.events[i].frame, b.events[i].frame);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_LT(a.events[i].shard, 4u);
  }
}

TEST(FaultPlanTest, EnvVariableFeedsBothSpecForms) {
  setenv("MPN_FAULT_PLAN", "1:2:trunc", /*overwrite=*/1);
  const FaultPlan explicit_plan = FaultPlan::FromEnv(2);
  unsetenv("MPN_FAULT_PLAN");
  ASSERT_EQ(explicit_plan.events.size(), 1u);
  EXPECT_EQ(explicit_plan.events[0].shard, 1u);
  EXPECT_EQ(explicit_plan.events[0].frame, 2u);
  EXPECT_EQ(explicit_plan.events[0].kind, FaultKind::kTruncate);

  setenv("MPN_FAULT_PLAN", "seed:7", /*overwrite=*/1);
  const FaultPlan seeded = FaultPlan::FromEnv(3);
  unsetenv("MPN_FAULT_PLAN");
  const FaultPlan reference = FaultPlan::FromSeed(7, 3);
  ASSERT_EQ(seeded.events.size(), reference.events.size());
  for (size_t i = 0; i < seeded.events.size(); ++i) {
    EXPECT_EQ(seeded.events[i].shard, reference.events[i].shard);
    EXPECT_EQ(seeded.events[i].frame, reference.events[i].frame);
    EXPECT_EQ(seeded.events[i].kind, reference.events[i].kind);
  }

  EXPECT_TRUE(FaultPlan::FromEnv(2).empty());  // unset -> empty plan
}

// --- Frame layer over both backends ------------------------------------------

WireBuffer SmallFrame() {
  WireBuffer f;
  f.PutU8(7);
  f.PutString("payload");
  f.PutU64(0xDEADBEEFCAFEF00Dull);
  return f;
}

class FramePairTest : public testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override { IpcChannel::MakePair(GetParam(), &a_, &b_); }
  IpcChannel a_, b_;
};

TEST_P(FramePairTest, RoundTripPreservesBytes) {
  EXPECT_EQ(IpcChannel::kHeaderBytes, 16u);
  EXPECT_EQ(IpcChannel::kFrameMagic, 0x314E504Du);  // "MPN1" little-endian
  const WireBuffer frame = SmallFrame();
  ASSERT_EQ(a_.SendFrame(frame, 1000), IoStatus::kOk);
  std::vector<uint8_t> payload;
  ASSERT_EQ(b_.RecvFrame(&payload, 1000), IoStatus::kOk);
  EXPECT_EQ(payload, frame.data());

  // Empty payloads round-trip too (CRC of the empty message).
  ASSERT_EQ(b_.SendFrame(WireBuffer(), 1000), IoStatus::kOk);
  ASSERT_EQ(a_.RecvFrame(&payload, 1000), IoStatus::kOk);
  EXPECT_TRUE(payload.empty());
}

TEST_P(FramePairTest, FirstByteDeadlineLeavesTheStreamClean) {
  std::vector<uint8_t> payload;
  EXPECT_EQ(b_.RecvFrame(&payload, 50), IoStatus::kDeadline);
  // Nothing was consumed: the next frame decodes normally.
  const WireBuffer frame = SmallFrame();
  ASSERT_EQ(a_.SendFrame(frame, 1000), IoStatus::kOk);
  ASSERT_EQ(b_.RecvFrame(&payload, 1000), IoStatus::kOk);
  EXPECT_EQ(payload, frame.data());
}

TEST_P(FramePairTest, CorruptedFrameThrowsTypedError) {
  a_.ArmFault(0, FaultKind::kCorrupt);
  ASSERT_EQ(a_.SendFrame(SmallFrame(), 1000), IoStatus::kOk);
  std::vector<uint8_t> payload;
  try {
    b_.RecvFrame(&payload, 1000);
    FAIL() << "a corrupted frame must throw FrameError";
  } catch (const FrameError& e) {
    EXPECT_NE(std::string(e.what()).find("mpn ipc"), std::string::npos);
  }
  EXPECT_EQ(a_.counters().faults_injected, 1u);
}

TEST_P(FramePairTest, TruncatedFrameTearsThenCloses) {
  a_.ArmFault(0, FaultKind::kTruncate);
  EXPECT_EQ(a_.SendFrame(SmallFrame(), 1000), IoStatus::kClosed);
  std::vector<uint8_t> payload;
  // The receiver sees a complete header, then EOF mid-payload — a torn
  // frame, not a clean close.
  EXPECT_THROW(b_.RecvFrame(&payload, 1000), FrameError);
}

TEST_P(FramePairTest, ResetDropsTheConnectionBetweenFrames) {
  a_.ArmFault(0, FaultKind::kReset);
  EXPECT_EQ(a_.SendFrame(SmallFrame(), 1000), IoStatus::kClosed);
  std::vector<uint8_t> payload;
  // Nothing of the frame was written: a clean kClosed, never garbage.
  EXPECT_EQ(b_.RecvFrame(&payload, 1000), IoStatus::kClosed);
}

TEST_P(FramePairTest, ShortIoAndEintrStormsAreAbsorbed) {
  a_.ArmFault(0, FaultKind::kShortIo);
  a_.ArmFault(1, FaultKind::kEintrStorm);
  b_.ArmFault(0, FaultKind::kShortIo);
  const WireBuffer frame = SmallFrame();
  std::vector<uint8_t> payload;
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(a_.SendFrame(frame, 1000), IoStatus::kOk);
    ASSERT_EQ(b_.RecvFrame(&payload, 1000), IoStatus::kOk);
    EXPECT_EQ(payload, frame.data());
  }
  EXPECT_EQ(a_.counters().faults_injected, 2u);
  // Short I/O forces 1-byte chunks through the 16-byte header alone.
  EXPECT_GE(a_.counters().partial_ops, 15u);
  EXPECT_GE(b_.counters().partial_ops, 15u);
  // The storm burns kEintrStormLength (8) simulated EINTRs.
  EXPECT_GE(a_.counters().retries, 8u);
}

TEST_P(FramePairTest, BadHeadersAreRejectedNotDecoded) {
  const auto put32 = [](uint8_t* p, uint32_t v) {
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
  };
  struct Bad {
    uint32_t magic, version, length;
    const char* what;
  };
  const Bad bads[] = {
      {0x0BADF00Du, IpcChannel::kFrameVersion, 0, "bad magic"},
      {IpcChannel::kFrameMagic, 99, 0, "unknown version"},
      {IpcChannel::kFrameMagic, IpcChannel::kFrameVersion, 0x7FFFFFFFu,
       "oversized length"},
  };
  for (const Bad& bad : bads) {
    SCOPED_TRACE(bad.what);
    Transport raw, rx_end;
    Transport::MakePair(GetParam(), &raw, &rx_end);
    IpcChannel rx(std::move(rx_end));
    uint8_t header[IpcChannel::kHeaderBytes];
    put32(header + 0, bad.magic);
    put32(header + 4, bad.version);
    put32(header + 8, bad.length);
    put32(header + 12, 0);  // CRC never reached: header rejected first
    ASSERT_EQ(raw.SendBytes(header, sizeof(header), 1000), IoStatus::kOk);
    std::vector<uint8_t> payload;
    EXPECT_THROW(rx.RecvFrame(&payload, 1000), FrameError);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, FramePairTest,
                         testing::Values(TransportKind::kSocketPair,
                                         TransportKind::kTcpLoopback),
                         [](const testing::TestParamInfo<TransportKind>& i) {
                           return i.param == TransportKind::kSocketPair
                                      ? "SocketPair"
                                      : "TcpLoopback";
                         });

// --- Cluster recovery under injected faults ----------------------------------

// Worker frame-op arithmetic for the 4-group / 2-worker workload below
// (the worker side is single-threaded, so this is deterministic): shard 1
// serves groups 1 and 3 — frame ops 0 and 1 are the admit receives, op 2
// the drain receive, op 3 the drain-reply send. Byte-level kinds target
// op 2 so their retries land in the same drain reply's counter delta;
// fatal kinds target op 3 so the coordinator is mid-collection when the
// fault fires.
constexpr size_t kGroups = 4;
constexpr size_t kDrainRecvOp = 2;
constexpr size_t kReplySendOp = 3;

class ClusterFaultTest : public testing::TestWithParam<TransportKind> {
 protected:
  static uint64_t ReferenceDigest(const World& w) {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(1));
    engine.Start();
    for (size_t g = 0; g < kGroups; ++g) engine.AdmitSession(GroupOf(w, g));
    engine.Shutdown();
    return engine.ResultDigest();
  }

  ClusterOptions FastOptions() const {
    ClusterOptions opt;
    opt.workers = 2;
    opt.engine = MakeEngineOptions(1);
    opt.transport.kind = GetParam();
    opt.transport.heartbeat_interval_ms = 100;
    opt.transport.heartbeat_timeout_ms = 500;
    opt.transport.heartbeat_miss_budget = 3;
    return opt;
  }

  /// Runs the workload with `kind` armed at shard 1's `frame`-th frame op
  /// and asserts the digest stayed bit-identical to the uninterrupted
  /// single-process run; returns the supervisor counters for the per-kind
  /// assertions.
  ClusterEngine::RecoveryStats RunWithFault(const World& w, uint64_t ref,
                                            size_t frame, FaultKind kind) {
    ClusterEngine cluster(&w.pois, &w.tree, FastOptions());
    cluster.InjectFaultAt(1, frame, kind);
    cluster.Start();
    for (size_t g = 0; g < kGroups; ++g) cluster.AdmitSession(GroupOf(w, g));
    cluster.Wait();
    EXPECT_EQ(cluster.ResultDigest(), ref) << FaultKindName(kind);
    EXPECT_FALSE(cluster.shard_lost(1));
    cluster.Shutdown();
    EXPECT_EQ(cluster.ResultDigest(), ref) << FaultKindName(kind);
    return cluster.recovery_stats();
  }
};

TEST_P(ClusterFaultTest, ShortIoIsAbsorbedWithoutARestart) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA0001);
  const uint64_t ref = ReferenceDigest(w);
  const ClusterEngine::RecoveryStats stats =
      RunWithFault(w, ref, kDrainRecvOp, FaultKind::kShortIo);
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.checksum_failures, 0u);
}

TEST_P(ClusterFaultTest, EintrStormIsRetriedAndCounted) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA0002);
  const uint64_t ref = ReferenceDigest(w);
  const ClusterEngine::RecoveryStats stats =
      RunWithFault(w, ref, kDrainRecvOp, FaultKind::kEintrStorm);
  EXPECT_EQ(stats.restarts, 0u);
  // The worker's drain reply ships its channel's retry delta, which
  // includes the 8 simulated EINTRs the storm burned.
  EXPECT_GE(stats.retries, 8u);
}

TEST_P(ClusterFaultTest, CorruptReplyIsDetectedAndRecovered) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA0003);
  const uint64_t ref = ReferenceDigest(w);
  const ClusterEngine::RecoveryStats stats =
      RunWithFault(w, ref, kReplySendOp, FaultKind::kCorrupt);
  EXPECT_GE(stats.checksum_failures, 1u);
  EXPECT_EQ(stats.restarts, 1u);
}

TEST_P(ClusterFaultTest, TruncatedReplyIsDetectedAndRecovered) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA0004);
  const uint64_t ref = ReferenceDigest(w);
  const ClusterEngine::RecoveryStats stats =
      RunWithFault(w, ref, kReplySendOp, FaultKind::kTruncate);
  EXPECT_GE(stats.checksum_failures, 1u);
  EXPECT_EQ(stats.restarts, 1u);
}

TEST_P(ClusterFaultTest, ConnectionResetIsRecovered) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA0005);
  const uint64_t ref = ReferenceDigest(w);
  const ClusterEngine::RecoveryStats stats =
      RunWithFault(w, ref, kReplySendOp, FaultKind::kReset);
  EXPECT_EQ(stats.restarts, 1u);
}

TEST_P(ClusterFaultTest, StalledWorkerExhaustsTheMissBudgetAndRecovers) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA0006);
  const uint64_t ref = ReferenceDigest(w);
  const ClusterEngine::RecoveryStats stats =
      RunWithFault(w, ref, kReplySendOp, FaultKind::kStall);
  EXPECT_GE(stats.heartbeat_misses, 3u);  // the full miss budget
  EXPECT_EQ(stats.restarts, 1u);
}

TEST_P(ClusterFaultTest, SigstoppedWorkerIsKilledByTheMissBudget) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA0007);
  const uint64_t ref = ReferenceDigest(w);
  ClusterEngine cluster(&w.pois, &w.tree, FastOptions());
  cluster.Start();
  for (size_t g = 0; g < kGroups; ++g) cluster.AdmitSession(GroupOf(w, g));
  // Hung, not dead: the kernel keeps the pipes open, so only the
  // heartbeat machinery can notice — EOF never comes.
  cluster.StopWorkerForTest(1);
  cluster.Wait();
  EXPECT_EQ(cluster.ResultDigest(), ref);
  const ClusterEngine::RecoveryStats stats = cluster.recovery_stats();
  EXPECT_GE(stats.heartbeat_misses, 3u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_FALSE(cluster.shard_lost(1));
  cluster.Shutdown();
  EXPECT_EQ(cluster.ResultDigest(), ref);
}

TEST_P(ClusterFaultTest, DrainDeadlineCatchesAHangWhenTheBudgetIsHuge) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA0008);
  const uint64_t ref = ReferenceDigest(w);
  ClusterOptions opt = FastOptions();
  opt.transport.heartbeat_timeout_ms = 300;
  opt.transport.heartbeat_miss_budget = 1000;  // misses alone never trip
  opt.transport.drain_deadline_ms = 500;
  ClusterEngine cluster(&w.pois, &w.tree, opt);
  cluster.Start();
  for (size_t g = 0; g < kGroups; ++g) cluster.AdmitSession(GroupOf(w, g));
  cluster.StopWorkerForTest(1);
  cluster.Wait();
  EXPECT_EQ(cluster.ResultDigest(), ref);
  const ClusterEngine::RecoveryStats stats = cluster.recovery_stats();
  EXPECT_GE(stats.deadline_hits, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  cluster.Shutdown();
}

TEST_P(ClusterFaultTest, FailStopSurfacesTheTransportErrorText) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA0009);
  ClusterOptions opt = FastOptions();
  opt.recovery.max_restarts = 0;  // pre-elastic fail-stop
  ClusterEngine cluster(&w.pois, &w.tree, opt);
  cluster.InjectFaultAt(1, kReplySendOp, FaultKind::kCorrupt);
  cluster.Start();
  for (size_t g = 0; g < kGroups; ++g) cluster.AdmitSession(GroupOf(w, g));
  try {
    cluster.Wait();
    FAIL() << "fail-stop must surface the integrity failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    // The typed frame failure is carried into the per-shard error text.
    EXPECT_NE(what.find("mpn ipc"), std::string::npos) << what;
  }
}

TEST_P(ClusterFaultTest, HeartbeatsDisabledStillDrainsCleanly) {
  const World w = MakeWorld(200, kGroups, 60, 0xFA000A);
  const uint64_t ref = ReferenceDigest(w);
  ClusterOptions opt = FastOptions();
  opt.transport.heartbeats = false;  // pre-hardening blocking waits
  ClusterEngine cluster(&w.pois, &w.tree, opt);
  cluster.Start();
  for (size_t g = 0; g < kGroups; ++g) cluster.AdmitSession(GroupOf(w, g));
  cluster.Wait();
  EXPECT_EQ(cluster.ResultDigest(), ref);
  const ClusterEngine::RecoveryStats stats = cluster.recovery_stats();
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.heartbeat_misses, 0u);
  EXPECT_EQ(stats.checksum_failures, 0u);
  cluster.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Backends, ClusterFaultTest,
                         testing::Values(TransportKind::kSocketPair,
                                         TransportKind::kTcpLoopback),
                         [](const testing::TestParamInfo<TransportKind>& i) {
                           return i.param == TransportKind::kSocketPair
                                      ? "SocketPair"
                                      : "TcpLoopback";
                         });

// --- Randomized fault soak (CI re-runs this with MPN_FAULT_PLAN=seed:N) ------

TEST(FaultSoakTest, RandomizedPlanKeepsTheDigestBitIdentical) {
  const size_t kSoakGroups = 8;
  const World w = MakeWorld(200, kSoakGroups, 60, 0xFA0050);

  // Two serving rounds so the plan's frame indices (FromSeed draws 0-11)
  // reach admits, drains, replies and the shutdown exchange.
  uint64_t ref = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(1));
    engine.Start();
    for (size_t g = 0; g < 4; ++g) engine.AdmitSession(GroupOf(w, g));
    engine.Wait();
    for (size_t g = 4; g < kSoakGroups; ++g) {
      engine.AdmitSession(GroupOf(w, g));
    }
    engine.Shutdown();
    ref = engine.ResultDigest();
  }

  ClusterOptions opt;
  opt.workers = 2;
  opt.engine = MakeEngineOptions(1);
  opt.transport.heartbeat_interval_ms = 100;
  opt.transport.heartbeat_timeout_ms = 500;
  opt.transport.heartbeat_miss_budget = 3;
  // A seeded plan can land both its fatal events on one shard; keep the
  // budget comfortably above that.
  opt.recovery.max_restarts = 6;

  // The ctest entry runs the fixed fallback seed; the CI fault soak (and
  // local repros) export MPN_FAULT_PLAN=seed:N to randomize it.
  const bool env_driven = std::getenv("MPN_FAULT_PLAN") != nullptr;
  if (!env_driven) setenv("MPN_FAULT_PLAN", "seed:1", /*overwrite=*/1);
  ClusterEngine cluster(&w.pois, &w.tree, opt);  // ctor consumes the plan
  if (!env_driven) unsetenv("MPN_FAULT_PLAN");

  cluster.Start();
  for (size_t g = 0; g < 4; ++g) cluster.AdmitSession(GroupOf(w, g));
  cluster.Wait();
  for (size_t g = 4; g < kSoakGroups; ++g) {
    cluster.AdmitSession(GroupOf(w, g));
  }
  cluster.Wait();
  EXPECT_EQ(cluster.ResultDigest(), ref);
  cluster.Shutdown();
  EXPECT_EQ(cluster.ResultDigest(), ref);
  EXPECT_FALSE(cluster.shard_lost(0));
  EXPECT_FALSE(cluster.shard_lost(1));
}

}  // namespace
}  // namespace mpn
