#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace mpn {
namespace {

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena(256);
  std::vector<int*> blocks;
  for (int i = 0; i < 100; ++i) {
    int* p = arena.AllocateArray<int>(17);
    for (int j = 0; j < 17; ++j) p[j] = i;
    blocks.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 17; ++j) {
      ASSERT_EQ(blocks[i][j], i) << "allocation " << i << " was clobbered";
    }
  }
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena(64);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(reinterpret_cast<uintptr_t>(arena.Allocate(1)) %
                  alignof(std::max_align_t),
              0u);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(arena.Allocate(24, 16)) % 16, 0u);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(arena.AllocateArray<double>(3)) %
                  alignof(double),
              0u);
  }
}

TEST(ArenaTest, GrowsPastInitialBlockAndTracksUsage) {
  Arena arena(128);
  EXPECT_EQ(arena.bytes_used(), 0u);
  arena.AllocateArray<double>(1000);  // far past the 128-byte first block
  EXPECT_GE(arena.bytes_used(), 1000 * sizeof(double));
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, ResetRetainsCapacityAndReusesMemory) {
  Arena arena(64);
  for (int round = 0; round < 8; ++round) {
    double* p = arena.AllocateArray<double>(512);
    std::memset(p, 0, 512 * sizeof(double));
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
  }
  // After the first round the high-water block fits the whole allocation,
  // so reserved capacity stabilizes instead of growing per round.
  const size_t reserved = arena.bytes_reserved();
  arena.AllocateArray<double>(512);
  arena.Reset();
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, ZeroByteAllocationsYieldDistinctPointers) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mpn
