// Group nearest neighbor (MAX/SUM-GNN) tests: aggregate distance math,
// best-first search vs brute force, incremental cursor ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "index/gnn.h"
#include "util/rng.h"

namespace mpn {
namespace {

std::vector<Point> RandomPoints(size_t n, uint64_t seed,
                                double extent = 1000.0) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, extent), rng.Uniform(0, extent)});
  }
  return pts;
}

TEST(AggDistTest, MaxAndSum) {
  const std::vector<Point> users = {{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(AggDist({0, 0}, users, Objective::kMax), 10.0);
  EXPECT_DOUBLE_EQ(AggDist({5, 0}, users, Objective::kMax), 5.0);
  EXPECT_DOUBLE_EQ(AggDist({5, 0}, users, Objective::kSum), 10.0);
  EXPECT_DOUBLE_EQ(AggDist({0, 0}, users, Objective::kSum), 10.0);
}

TEST(AggDistTest, MbrLowerBoundIsValid) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Point> users;
    const int m = static_cast<int>(rng.UniformInt(1, 6));
    for (int i = 0; i < m; ++i) {
      users.push_back({rng.Uniform(-100, 100), rng.Uniform(-100, 100)});
    }
    const Point lo{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const Rect mbr(lo, {lo.x + rng.Uniform(1, 50), lo.y + rng.Uniform(1, 50)});
    for (Objective obj : {Objective::kMax, Objective::kSum}) {
      const double lb = AggMinDist(mbr, users, obj);
      for (int s = 0; s < 30; ++s) {
        const Point p{rng.Uniform(mbr.lo.x, mbr.hi.x),
                      rng.Uniform(mbr.lo.y, mbr.hi.y)};
        EXPECT_LE(lb, AggDist(p, users, obj) + 1e-9);
      }
    }
  }
}

TEST(GnnTest, KnownConfiguration) {
  // Fig. 11 of the paper: U = {u1, u2}, P = {p1, p2};
  // p1 minimizes the sum (1.5 + 9.5 = 11).
  const std::vector<Point> users = {{1.5, 0}, {-9.5, 0}};
  const std::vector<Point> pois = {{0, 0}, {6, 0}};
  RTree tree = RTree::BulkLoad(pois);
  const auto sum = FindGnn(tree, users, Objective::kSum, 1);
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_EQ(sum[0].id, 0u);
  EXPECT_DOUBLE_EQ(sum[0].agg, 1.5 + 9.5);
}

class GnnParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, Objective>> {
};

TEST_P(GnnParamTest, MatchesBruteForce) {
  const auto [n, m, obj] = GetParam();
  const auto pois = RandomPoints(n, 11 * n + m);
  RTree tree = RTree::BulkLoad(pois);
  Rng rng(n * 7 + m);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Point> users;
    for (size_t i = 0; i < m; ++i) {
      users.push_back({rng.Uniform(-200, 1200), rng.Uniform(-200, 1200)});
    }
    const size_t k = 1 + static_cast<size_t>(rng.UniformInt(0, 20));
    const auto got = FindGnn(tree, users, obj, k);
    const auto want = FindGnnBruteForce(pois, users, obj, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].agg, want[i].agg, 1e-9)
          << "rank " << i << " trial " << trial;
    }
    // The first result (the optimal meeting point) must match exactly
    // (deterministic tie-breaking by id).
    if (!got.empty()) {
      EXPECT_EQ(got[0].id, want[0].id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, GnnParamTest,
    ::testing::Combine(::testing::Values(size_t{20}, size_t{200},
                                         size_t{3000}),
                       ::testing::Values(size_t{1}, size_t{3}, size_t{6}),
                       ::testing::Values(Objective::kMax, Objective::kSum)),
    [](const ::testing::TestParamInfo<GnnParamTest::ParamType>& info) {
      return std::string(ObjectiveName(std::get<2>(info.param))) + "_n" +
             std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

TEST(GnnTest, CursorStreamsInNonDecreasingOrder) {
  const auto pois = RandomPoints(500, 321);
  RTree tree = RTree::BulkLoad(pois);
  const std::vector<Point> users = {{100, 100}, {900, 200}, {400, 800}};
  for (Objective obj : {Objective::kMax, Objective::kSum}) {
    GnnCursor cursor(&tree, users, obj);
    double prev = -1.0;
    size_t count = 0;
    while (auto item = cursor.Next()) {
      EXPECT_GE(item->agg, prev - 1e-12);
      prev = item->agg;
      ++count;
    }
    EXPECT_EQ(count, pois.size());  // exhausts the whole dataset exactly once
  }
}

TEST(GnnTest, CursorExhaustsAndReturnsNullopt) {
  const auto pois = RandomPoints(10, 5);
  RTree tree = RTree::BulkLoad(pois);
  GnnCursor cursor(&tree, {{0, 0}}, Objective::kMax);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(cursor.Next().has_value());
  EXPECT_FALSE(cursor.Next().has_value());
  EXPECT_FALSE(cursor.Next().has_value());
}

TEST(GnnTest, SingleUserEqualsKnn) {
  const auto pois = RandomPoints(800, 2718);
  RTree tree = RTree::BulkLoad(pois);
  const Point q{333, 444};
  const auto knn = tree.Knn(q, 15);
  const auto gnn = FindGnn(tree, {q}, Objective::kMax, 15);
  ASSERT_EQ(knn.size(), gnn.size());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_NEAR(Dist(q, pois[knn[i]]), gnn[i].agg, 1e-12);
  }
}

TEST(GnnTest, ObjectiveNameStrings) {
  EXPECT_STREQ(ObjectiveName(Objective::kMax), "MAX");
  EXPECT_STREQ(ObjectiveName(Objective::kSum), "SUM");
}

}  // namespace
}  // namespace mpn
