// Road-network MPN extension tests: network metric correctness (symmetry,
// triangle inequality, same-edge shortcuts), metric-ball materialization,
// the metric-space Theorem-1/5 soundness property, and the end-to-end
// network simulation invariant.
#include <gtest/gtest.h>

#include <cmath>

#include "netmpn/network_mpn.h"
#include "util/rng.h"

namespace mpn {
namespace {

const Rect kWorld({0, 0}, {10000, 10000});

struct NetFixture {
  RoadNetwork network;
  NetworkSpace space;
  explicit NetFixture(uint64_t seed, int rows = 8, int cols = 8)
      : network([&] {
          Rng rng(seed);
          return RoadNetwork::RandomGrid(kWorld, rows, cols, 0.2, 0.1, 0.1,
                                         &rng);
        }()),
        space(&network) {}
};

TEST(NetworkSpaceTest, EdgeTableMatchesNetwork) {
  NetFixture f(1);
  EXPECT_EQ(f.space.EdgeCount(), f.network.EdgeCount());
  for (uint32_t id = 0; id < f.space.EdgeCount(); ++id) {
    const auto& e = f.space.edge(id);
    EXPECT_LT(e.a, e.b);
    EXPECT_NEAR(e.length,
                Dist(f.network.NodePos(e.a), f.network.NodePos(e.b)), 1e-9);
  }
}

TEST(NetworkSpaceTest, ToEuclideanInterpolates) {
  NetFixture f(2);
  const auto& e = f.space.edge(0);
  const Point pa = f.network.NodePos(e.a);
  const Point pb = f.network.NodePos(e.b);
  EXPECT_NEAR(Dist(f.space.ToEuclidean({0, 0.0}), pa), 0.0, 1e-9);
  EXPECT_NEAR(Dist(f.space.ToEuclidean({0, e.length}), pb), 0.0, 1e-9);
  const Point mid = f.space.ToEuclidean({0, e.length / 2});
  EXPECT_NEAR(Dist(mid, pa), Dist(mid, pb), 1e-9);
}

TEST(NetworkSpaceTest, DistanceIsSymmetric) {
  NetFixture f(3);
  Rng rng(33);
  for (int trial = 0; trial < 40; ++trial) {
    const EdgePosition a = RandomEdgePosition(f.space, &rng);
    const EdgePosition b = RandomEdgePosition(f.space, &rng);
    EXPECT_NEAR(f.space.Distance(a, b), f.space.Distance(b, a), 1e-6);
  }
}

TEST(NetworkSpaceTest, DistanceSatisfiesTriangleInequality) {
  NetFixture f(4);
  Rng rng(44);
  for (int trial = 0; trial < 40; ++trial) {
    const EdgePosition a = RandomEdgePosition(f.space, &rng);
    const EdgePosition b = RandomEdgePosition(f.space, &rng);
    const EdgePosition c = RandomEdgePosition(f.space, &rng);
    EXPECT_LE(f.space.Distance(a, c),
              f.space.Distance(a, b) + f.space.Distance(b, c) + 1e-6);
  }
}

TEST(NetworkSpaceTest, DistanceLowerBoundedByEuclidean) {
  NetFixture f(5);
  Rng rng(55);
  for (int trial = 0; trial < 40; ++trial) {
    const EdgePosition a = RandomEdgePosition(f.space, &rng);
    const EdgePosition b = RandomEdgePosition(f.space, &rng);
    EXPECT_GE(f.space.Distance(a, b) + 1e-6,
              Dist(f.space.ToEuclidean(a), f.space.ToEuclidean(b)));
  }
}

TEST(NetworkSpaceTest, SameEdgeShortcut) {
  NetFixture f(6);
  const auto& e = f.space.edge(0);
  const EdgePosition a{0, e.length * 0.25};
  const EdgePosition b{0, e.length * 0.75};
  EXPECT_NEAR(f.space.Distance(a, b), e.length * 0.5, 1e-9);
}

TEST(NetworkSpaceTest, ZeroDistanceToSelf) {
  NetFixture f(7);
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const EdgePosition a = RandomEdgePosition(f.space, &rng);
    EXPECT_NEAR(f.space.Distance(a, a), 0.0, 1e-9);
  }
}

TEST(NetworkBallTest, ContainsExactlyPositionsWithinRadius) {
  NetFixture f(8);
  Rng rng(88);
  for (int trial = 0; trial < 15; ++trial) {
    const EdgePosition center = RandomEdgePosition(f.space, &rng);
    const double radius = rng.Uniform(100, 3000);
    const NetworkBall ball = f.space.Ball(center, radius);
    for (int s = 0; s < 60; ++s) {
      const EdgePosition p = RandomEdgePosition(f.space, &rng);
      const double d = f.space.Distance(center, p);
      if (d <= radius - 1e-6) {
        EXPECT_TRUE(ball.Contains(p))
            << "dist " << d << " <= radius " << radius;
      }
      if (d > radius + 1e-6) {
        EXPECT_FALSE(ball.Contains(p))
            << "dist " << d << " > radius " << radius;
      }
    }
  }
}

TEST(NetworkBallTest, ContainsCenterAndGrowsWithRadius) {
  NetFixture f(9);
  Rng rng(99);
  const EdgePosition center = RandomEdgePosition(f.space, &rng);
  double prev_len = -1.0;
  for (double r : {0.0, 50.0, 500.0, 5000.0, 50000.0}) {
    const NetworkBall ball = f.space.Ball(center, r);
    EXPECT_TRUE(ball.Contains(center, 1e-6));
    EXPECT_GE(ball.TotalLength(), prev_len);
    prev_len = ball.TotalLength();
  }
  // A huge radius covers the whole network.
  double total_edges = 0.0;
  for (uint32_t id = 0; id < f.space.EdgeCount(); ++id) {
    total_edges += f.space.edge(id).length;
  }
  EXPECT_NEAR(f.space.Ball(center, 1e9).TotalLength(), total_edges, 1e-6);
}

TEST(NetworkBallTest, SegmentsAreMergedAndSorted) {
  NetworkBall ball;
  ball.AddSegment(3, 5.0, 10.0);
  ball.AddSegment(1, 0.0, 2.0);
  ball.AddSegment(3, 8.0, 12.0);
  ball.AddSegment(3, 20.0, 25.0);
  ball.Finalize();
  ASSERT_EQ(ball.SegmentCount(), 3u);
  EXPECT_EQ(ball.segments()[0].edge_id, 1u);
  EXPECT_DOUBLE_EQ(ball.segments()[1].lo, 5.0);
  EXPECT_DOUBLE_EQ(ball.segments()[1].hi, 12.0);
  EXPECT_DOUBLE_EQ(ball.TotalLength(), 2.0 + 7.0 + 5.0);
  EXPECT_EQ(ball.ValueCount(), 6u);
}

TEST(NetworkBallTest, EmptyAndNegativeRadius) {
  NetFixture f(10);
  const NetworkBall ball = f.space.Ball({0, 0.0}, -1.0);
  EXPECT_EQ(ball.SegmentCount(), 0u);
  EXPECT_FALSE(ball.Contains({0, 0.0}));
}

class NetworkMpnSoundnessTest : public ::testing::TestWithParam<Objective> {};

// Metric-space Theorem 1/5: sampled user positions inside the metric balls
// never change the optimal meeting point (exhaustive check over POIs).
TEST_P(NetworkMpnSoundnessTest, BallsKeepOptimumInvariant) {
  const Objective obj = GetParam();
  NetFixture f(11);
  Rng rng(obj == Objective::kMax ? 111 : 112);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 60; ++i) pois.push_back(RandomEdgePosition(f.space, &rng));
  const NetworkMpn engine(&f.space, pois);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<EdgePosition> users;
    const size_t m = 1 + trial % 3;
    for (size_t i = 0; i < m; ++i) {
      users.push_back(RandomEdgePosition(f.space, &rng));
    }
    const NetworkMpnResult result = engine.Compute(users, obj);
    if (result.rmax <= 0.0) continue;
    for (int inst = 0; inst < 15; ++inst) {
      // Sample a location inside each user's ball by rejection.
      std::vector<EdgePosition> locs;
      for (size_t i = 0; i < m; ++i) {
        EdgePosition l = users[i];
        for (int tries = 0; tries < 200; ++tries) {
          const EdgePosition cand = RandomEdgePosition(f.space, &rng);
          if (result.regions[i].Contains(cand)) {
            l = cand;
            break;
          }
        }
        locs.push_back(l);
      }
      // Exhaustive optimum for the sampled instance.
      std::vector<std::vector<double>> nd;
      for (const EdgePosition& u : locs) {
        nd.push_back(f.space.NodeDistancesFrom(u));
      }
      double best = 1e300;
      for (size_t j = 0; j < pois.size(); ++j) {
        best = std::min(best, engine.AggNetworkDist(j, nd, locs, obj));
      }
      const double reported =
          engine.AggNetworkDist(result.po_index, nd, locs, obj);
      EXPECT_LE(reported, best + 1e-6 * (1.0 + best))
          << "trial " << trial << " instance " << inst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Objectives, NetworkMpnSoundnessTest,
                         ::testing::Values(Objective::kMax, Objective::kSum),
                         [](const ::testing::TestParamInfo<Objective>& info) {
                           return ObjectiveName(info.param);
                         });

TEST(NetworkTrajectoryTest, PositionsValidAndSpeedBounded) {
  NetFixture f(13);
  Rng rng(133);
  const NetworkTrajectory traj =
      GenerateNetworkTrajectory(f.space, f.network, 40.0, 500, &rng);
  ASSERT_EQ(traj.size(), 500u);
  for (size_t t = 0; t < traj.size(); ++t) {
    EXPECT_TRUE(f.space.IsValid(traj.positions[t])) << "t=" << t;
  }
  // Network distance between consecutive samples never exceeds the speed.
  for (size_t t = 1; t < traj.size(); t += 25) {
    EXPECT_LE(f.space.Distance(traj.positions[t - 1], traj.positions[t]),
              40.0 + 1e-6)
        << "t=" << t;
  }
}

TEST(NetworkSimTest, EndToEndInvariantHolds) {
  NetFixture f(14, 6, 6);
  Rng rng(144);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 40; ++i) pois.push_back(RandomEdgePosition(f.space, &rng));
  const NetworkMpn engine(&f.space, pois);
  std::vector<NetworkTrajectory> trajs;
  for (int i = 0; i < 3; ++i) {
    trajs.push_back(
        GenerateNetworkTrajectory(f.space, f.network, 25.0, 250, &rng));
  }
  const std::vector<const NetworkTrajectory*> group = {&trajs[0], &trajs[1],
                                                       &trajs[2]};
  for (Objective obj : {Objective::kMax, Objective::kSum}) {
    const NetworkSimMetrics metrics =
        SimulateNetworkMpn(f.space, engine, group, obj,
                           /*check_correctness=*/true);
    EXPECT_EQ(metrics.timestamps, 250u);
    EXPECT_GT(metrics.updates, 0u);
    EXPECT_LT(metrics.updates, 250u);  // balls must save some updates
  }
}

TEST(NetworkSimTest, SafeRegionsBeatPerTickReporting) {
  NetFixture f(15);
  Rng rng(155);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 80; ++i) pois.push_back(RandomEdgePosition(f.space, &rng));
  const NetworkMpn engine(&f.space, pois);
  std::vector<NetworkTrajectory> trajs;
  for (int i = 0; i < 2; ++i) {
    trajs.push_back(
        GenerateNetworkTrajectory(f.space, f.network, 15.0, 600, &rng));
  }
  const std::vector<const NetworkTrajectory*> group = {&trajs[0], &trajs[1]};
  const NetworkSimMetrics metrics =
      SimulateNetworkMpn(f.space, engine, group, Objective::kMax);
  EXPECT_LT(metrics.UpdateFrequency(), 0.5);
}

}  // namespace
}  // namespace mpn
