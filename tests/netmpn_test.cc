// Road-network MPN extension tests: network metric correctness (symmetry,
// triangle inequality, same-edge shortcuts), metric-ball materialization,
// the metric-space Theorem-1/5 soundness property, and the end-to-end
// network simulation invariant.
#include <gtest/gtest.h>

#include <cmath>

#include "netmpn/network_mpn.h"
#include "util/rng.h"

namespace mpn {
namespace {

const Rect kWorld({0, 0}, {10000, 10000});

struct NetFixture {
  RoadNetwork network;
  NetworkSpace space;
  explicit NetFixture(uint64_t seed, int rows = 8, int cols = 8)
      : network([&] {
          Rng rng(seed);
          return RoadNetwork::RandomGrid(kWorld, rows, cols, 0.2, 0.1, 0.1,
                                         &rng);
        }()),
        space(&network) {}
};

TEST(NetworkSpaceTest, EdgeTableMatchesNetwork) {
  NetFixture f(1);
  EXPECT_EQ(f.space.EdgeCount(), f.network.EdgeCount());
  for (uint32_t id = 0; id < f.space.EdgeCount(); ++id) {
    const auto& e = f.space.edge(id);
    EXPECT_LT(e.a, e.b);
    EXPECT_NEAR(e.length,
                Dist(f.network.NodePos(e.a), f.network.NodePos(e.b)), 1e-9);
  }
}

TEST(NetworkSpaceTest, ToEuclideanInterpolates) {
  NetFixture f(2);
  const auto& e = f.space.edge(0);
  const Point pa = f.network.NodePos(e.a);
  const Point pb = f.network.NodePos(e.b);
  EXPECT_NEAR(Dist(f.space.ToEuclidean({0, 0.0}), pa), 0.0, 1e-9);
  EXPECT_NEAR(Dist(f.space.ToEuclidean({0, e.length}), pb), 0.0, 1e-9);
  const Point mid = f.space.ToEuclidean({0, e.length / 2});
  EXPECT_NEAR(Dist(mid, pa), Dist(mid, pb), 1e-9);
}

TEST(NetworkSpaceTest, DistanceIsSymmetric) {
  NetFixture f(3);
  Rng rng(33);
  for (int trial = 0; trial < 40; ++trial) {
    const EdgePosition a = RandomEdgePosition(f.space, &rng);
    const EdgePosition b = RandomEdgePosition(f.space, &rng);
    EXPECT_NEAR(f.space.Distance(a, b), f.space.Distance(b, a), 1e-6);
  }
}

TEST(NetworkSpaceTest, DistanceSatisfiesTriangleInequality) {
  NetFixture f(4);
  Rng rng(44);
  for (int trial = 0; trial < 40; ++trial) {
    const EdgePosition a = RandomEdgePosition(f.space, &rng);
    const EdgePosition b = RandomEdgePosition(f.space, &rng);
    const EdgePosition c = RandomEdgePosition(f.space, &rng);
    EXPECT_LE(f.space.Distance(a, c),
              f.space.Distance(a, b) + f.space.Distance(b, c) + 1e-6);
  }
}

TEST(NetworkSpaceTest, DistanceLowerBoundedByEuclidean) {
  NetFixture f(5);
  Rng rng(55);
  for (int trial = 0; trial < 40; ++trial) {
    const EdgePosition a = RandomEdgePosition(f.space, &rng);
    const EdgePosition b = RandomEdgePosition(f.space, &rng);
    EXPECT_GE(f.space.Distance(a, b) + 1e-6,
              Dist(f.space.ToEuclidean(a), f.space.ToEuclidean(b)));
  }
}

TEST(NetworkSpaceTest, SameEdgeShortcut) {
  NetFixture f(6);
  const auto& e = f.space.edge(0);
  const EdgePosition a{0, e.length * 0.25};
  const EdgePosition b{0, e.length * 0.75};
  EXPECT_NEAR(f.space.Distance(a, b), e.length * 0.5, 1e-9);
}

TEST(NetworkSpaceTest, ZeroDistanceToSelf) {
  NetFixture f(7);
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const EdgePosition a = RandomEdgePosition(f.space, &rng);
    EXPECT_NEAR(f.space.Distance(a, a), 0.0, 1e-9);
  }
}

TEST(NetworkBallTest, ContainsExactlyPositionsWithinRadius) {
  NetFixture f(8);
  Rng rng(88);
  for (int trial = 0; trial < 15; ++trial) {
    const EdgePosition center = RandomEdgePosition(f.space, &rng);
    const double radius = rng.Uniform(100, 3000);
    const NetworkBall ball = f.space.Ball(center, radius);
    for (int s = 0; s < 60; ++s) {
      const EdgePosition p = RandomEdgePosition(f.space, &rng);
      const double d = f.space.Distance(center, p);
      if (d <= radius - 1e-6) {
        EXPECT_TRUE(ball.Contains(p))
            << "dist " << d << " <= radius " << radius;
      }
      if (d > radius + 1e-6) {
        EXPECT_FALSE(ball.Contains(p))
            << "dist " << d << " > radius " << radius;
      }
    }
  }
}

TEST(NetworkBallTest, ContainsCenterAndGrowsWithRadius) {
  NetFixture f(9);
  Rng rng(99);
  const EdgePosition center = RandomEdgePosition(f.space, &rng);
  double prev_len = -1.0;
  for (double r : {0.0, 50.0, 500.0, 5000.0, 50000.0}) {
    const NetworkBall ball = f.space.Ball(center, r);
    EXPECT_TRUE(ball.Contains(center, 1e-6));
    EXPECT_GE(ball.TotalLength(), prev_len);
    prev_len = ball.TotalLength();
  }
  // A huge radius covers the whole network.
  double total_edges = 0.0;
  for (uint32_t id = 0; id < f.space.EdgeCount(); ++id) {
    total_edges += f.space.edge(id).length;
  }
  EXPECT_NEAR(f.space.Ball(center, 1e9).TotalLength(), total_edges, 1e-6);
}

TEST(NetworkBallTest, SegmentsAreMergedAndSorted) {
  NetworkBall ball;
  ball.AddSegment(3, 5.0, 10.0);
  ball.AddSegment(1, 0.0, 2.0);
  ball.AddSegment(3, 8.0, 12.0);
  ball.AddSegment(3, 20.0, 25.0);
  ball.Finalize();
  ASSERT_EQ(ball.SegmentCount(), 3u);
  EXPECT_EQ(ball.segments()[0].edge_id, 1u);
  EXPECT_DOUBLE_EQ(ball.segments()[1].lo, 5.0);
  EXPECT_DOUBLE_EQ(ball.segments()[1].hi, 12.0);
  EXPECT_DOUBLE_EQ(ball.TotalLength(), 2.0 + 7.0 + 5.0);
  EXPECT_EQ(ball.ValueCount(), 6u);
}

TEST(NetworkBallTest, EmptyAndNegativeRadius) {
  NetFixture f(10);
  const NetworkBall ball = f.space.Ball({0, 0.0}, -1.0);
  EXPECT_EQ(ball.SegmentCount(), 0u);
  EXPECT_FALSE(ball.Contains({0, 0.0}));
}

class NetworkMpnSoundnessTest : public ::testing::TestWithParam<Objective> {};

// Metric-space Theorem 1/5: sampled user positions inside the metric balls
// never change the optimal meeting point (exhaustive check over POIs).
TEST_P(NetworkMpnSoundnessTest, BallsKeepOptimumInvariant) {
  const Objective obj = GetParam();
  NetFixture f(11);
  Rng rng(obj == Objective::kMax ? 111 : 112);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 60; ++i) pois.push_back(RandomEdgePosition(f.space, &rng));
  const NetworkMpn engine(&f.space, pois);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<EdgePosition> users;
    const size_t m = 1 + trial % 3;
    for (size_t i = 0; i < m; ++i) {
      users.push_back(RandomEdgePosition(f.space, &rng));
    }
    const NetworkMpnResult result = engine.Compute(users, obj);
    if (result.rmax <= 0.0) continue;
    for (int inst = 0; inst < 15; ++inst) {
      // Sample a location inside each user's ball by rejection.
      std::vector<EdgePosition> locs;
      for (size_t i = 0; i < m; ++i) {
        EdgePosition l = users[i];
        for (int tries = 0; tries < 200; ++tries) {
          const EdgePosition cand = RandomEdgePosition(f.space, &rng);
          if (result.regions[i].Contains(cand)) {
            l = cand;
            break;
          }
        }
        locs.push_back(l);
      }
      // Exhaustive optimum for the sampled instance.
      std::vector<std::vector<double>> nd;
      for (const EdgePosition& u : locs) {
        nd.push_back(f.space.NodeDistancesFrom(u));
      }
      double best = 1e300;
      for (size_t j = 0; j < pois.size(); ++j) {
        best = std::min(best, engine.AggNetworkDist(j, nd, locs, obj));
      }
      const double reported =
          engine.AggNetworkDist(result.po_index, nd, locs, obj);
      EXPECT_LE(reported, best + 1e-6 * (1.0 + best))
          << "trial " << trial << " instance " << inst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Objectives, NetworkMpnSoundnessTest,
                         ::testing::Values(Objective::kMax, Objective::kSum),
                         [](const ::testing::TestParamInfo<Objective>& info) {
                           return ObjectiveName(info.param);
                         });

// Two views of the same network: a plain Dijkstra space and one with the
// CH index attached. Everything computed through them must be
// bit-identical.
struct ChFixture {
  RoadNetwork network;
  CHIndex ch;
  NetworkSpace dijkstra_space;
  NetworkSpace ch_space;
  explicit ChFixture(uint64_t seed, int rows = 9, int cols = 9)
      : network([&] {
          Rng rng(seed);
          return RoadNetwork::RandomGrid(kWorld, rows, cols, 0.25, 0.12, 0.12,
                                         &rng);
        }()),
        ch(network.BuildCHIndex()),
        dijkstra_space(&network),
        ch_space(&network) {
    ch_space.AttachIndex(&ch);
  }
};

TEST(NetworkSpaceChTest, DistanceBitIdenticalToDijkstra) {
  ChFixture f(16);
  Rng rng(166);
  for (int trial = 0; trial < 60; ++trial) {
    const EdgePosition a = RandomEdgePosition(f.dijkstra_space, &rng);
    const EdgePosition b = RandomEdgePosition(f.dijkstra_space, &rng);
    EXPECT_EQ(f.ch_space.Distance(a, b), f.dijkstra_space.Distance(a, b));
  }
}

// Regression: positions on edges that share an endpoint — the meeting node
// of the CH query is then a search *seed* on both sides, which the
// relax-time candidate events alone would miss.
TEST(NetworkSpaceChTest, AdjacentEdgePositionsBitIdentical) {
  ChFixture f(21);
  for (uint32_t e1 = 0; e1 < f.dijkstra_space.EdgeCount(); ++e1) {
    for (uint32_t e2 = e1 + 1; e2 < f.dijkstra_space.EdgeCount(); ++e2) {
      const auto& a = f.dijkstra_space.edge(e1);
      const auto& b = f.dijkstra_space.edge(e2);
      if (a.a != b.a && a.a != b.b && a.b != b.a && a.b != b.b) continue;
      for (double ta : {0.0, 0.3, 1.0}) {
        for (double tb : {0.0, 0.7, 1.0}) {
          const EdgePosition pa{e1, ta * a.length};
          const EdgePosition pb{e2, tb * b.length};
          EXPECT_EQ(f.ch_space.Distance(pa, pb),
                    f.dijkstra_space.Distance(pa, pb))
              << "edges " << e1 << "," << e2 << " t=" << ta << "," << tb;
        }
      }
      e1 = f.dijkstra_space.EdgeCount();  // one adjacent pair is plenty...
      break;
    }
  }
  // ...but also sweep a handful of random adjacent pairs.
  Rng rng(211);
  int found = 0;
  for (int trial = 0; trial < 400 && found < 12; ++trial) {
    const EdgePosition pa = RandomEdgePosition(f.dijkstra_space, &rng);
    const EdgePosition pb = RandomEdgePosition(f.dijkstra_space, &rng);
    const auto& a = f.dijkstra_space.edge(pa.edge_id);
    const auto& b = f.dijkstra_space.edge(pb.edge_id);
    if (a.a != b.a && a.a != b.b && a.b != b.a && a.b != b.b) continue;
    ++found;
    EXPECT_EQ(f.ch_space.Distance(pa, pb), f.dijkstra_space.Distance(pa, pb));
  }
  EXPECT_GT(found, 0);
}

TEST(NetworkSpaceChTest, DistancesToTargetsMatchNodeDistances) {
  ChFixture f(17);
  Rng rng(177);
  std::vector<uint32_t> nodes;
  for (int i = 0; i < 30; ++i) {
    nodes.push_back(static_cast<uint32_t>(rng.UniformInt(
        0, static_cast<int64_t>(f.network.NodeCount()) - 1)));
  }
  const CHIndex::TargetSet targets = f.ch.MakeTargetSet(nodes);
  for (int trial = 0; trial < 15; ++trial) {
    const EdgePosition src = RandomEdgePosition(f.ch_space, &rng);
    const std::vector<double> oracle =
        f.dijkstra_space.NodeDistancesFrom(src);
    std::vector<double> got;
    f.ch_space.DistancesToTargets(src, targets, &got);
    ASSERT_EQ(got.size(), nodes.size());
    for (size_t j = 0; j < nodes.size(); ++j) {
      EXPECT_EQ(got[j], oracle[nodes[j]]) << "target node " << nodes[j];
    }
  }
}

TEST(NetworkMpnChTest, ComputeIdenticalWithAndWithoutIndex) {
  ChFixture f(18);
  Rng rng(188);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 70; ++i) {
    pois.push_back(RandomEdgePosition(f.dijkstra_space, &rng));
  }
  const NetworkMpn dijkstra_engine(&f.dijkstra_space, pois);
  const NetworkMpn ch_engine(&f.ch_space, pois);
  for (Objective obj : {Objective::kMax, Objective::kSum}) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<EdgePosition> users;
      for (int i = 0; i < 1 + trial % 4; ++i) {
        users.push_back(RandomEdgePosition(f.dijkstra_space, &rng));
      }
      const NetworkMpnResult a = dijkstra_engine.Compute(users, obj);
      const NetworkMpnResult b = ch_engine.Compute(users, obj);
      EXPECT_EQ(a.po_index, b.po_index);
      EXPECT_EQ(a.po_agg, b.po_agg);
      EXPECT_EQ(a.second_agg, b.second_agg);
      EXPECT_EQ(a.rmax, b.rmax);
      ASSERT_EQ(a.regions.size(), b.regions.size());
      for (size_t i = 0; i < a.regions.size(); ++i) {
        EXPECT_EQ(a.regions[i].SegmentCount(), b.regions[i].SegmentCount());
        EXPECT_EQ(a.regions[i].TotalLength(), b.regions[i].TotalLength());
      }
    }
  }
}

TEST(NetworkMpnChTest, NearestPOIsMatchesExhaustiveRanking) {
  ChFixture f(19);
  Rng rng(199);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 50; ++i) {
    pois.push_back(RandomEdgePosition(f.dijkstra_space, &rng));
  }
  const NetworkMpn engine(&f.ch_space, pois);
  const NetworkMpn oracle_engine(&f.dijkstra_space, pois);
  for (Objective obj : {Objective::kMax, Objective::kSum}) {
    std::vector<EdgePosition> users;
    for (int i = 0; i < 3; ++i) {
      users.push_back(RandomEdgePosition(f.dijkstra_space, &rng));
    }
    const auto ranks = engine.NearestPOIs(users, obj, 10);
    ASSERT_EQ(ranks.size(), 10u);
    // Exhaustive oracle: aggregate via per-user Dijkstra tables.
    std::vector<std::vector<double>> nd;
    for (const EdgePosition& u : users) {
      nd.push_back(f.dijkstra_space.NodeDistancesFrom(u));
    }
    std::vector<std::pair<double, uint32_t>> all;
    for (size_t j = 0; j < pois.size(); ++j) {
      all.push_back({oracle_engine.AggNetworkDist(j, nd, users, obj),
                     static_cast<uint32_t>(j)});
    }
    std::sort(all.begin(), all.end());
    for (size_t r = 0; r < ranks.size(); ++r) {
      EXPECT_EQ(ranks[r].poi_index, all[r].second) << "rank " << r;
      EXPECT_EQ(ranks[r].agg, all[r].first) << "rank " << r;
    }
    // Ascending aggregates.
    for (size_t r = 1; r < ranks.size(); ++r) {
      EXPECT_LE(ranks[r - 1].agg, ranks[r].agg);
    }
  }
}

TEST(NetworkSimChTest, SimulationMetricsIdenticalWithAndWithoutIndex) {
  ChFixture f(20, 7, 7);
  Rng rng(200);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 40; ++i) {
    pois.push_back(RandomEdgePosition(f.dijkstra_space, &rng));
  }
  const NetworkMpn dijkstra_engine(&f.dijkstra_space, pois);
  const NetworkMpn ch_engine(&f.ch_space, pois);
  std::vector<NetworkTrajectory> trajs;
  for (int i = 0; i < 3; ++i) {
    trajs.push_back(
        GenerateNetworkTrajectory(f.dijkstra_space, f.network, 30.0, 200,
                                  &rng));
  }
  const std::vector<const NetworkTrajectory*> group = {&trajs[0], &trajs[1],
                                                       &trajs[2]};
  for (Objective obj : {Objective::kMax, Objective::kSum}) {
    const NetworkSimMetrics a =
        SimulateNetworkMpn(f.dijkstra_space, dijkstra_engine, group, obj,
                           /*check_correctness=*/true);
    const NetworkSimMetrics b =
        SimulateNetworkMpn(f.ch_space, ch_engine, group, obj,
                           /*check_correctness=*/true);
    EXPECT_EQ(a.timestamps, b.timestamps);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.result_changes, b.result_changes);
    EXPECT_EQ(a.region_values, b.region_values);
  }
}

TEST(NetworkTrajectoryTest, PositionsValidAndSpeedBounded) {
  NetFixture f(13);
  Rng rng(133);
  const NetworkTrajectory traj =
      GenerateNetworkTrajectory(f.space, f.network, 40.0, 500, &rng);
  ASSERT_EQ(traj.size(), 500u);
  for (size_t t = 0; t < traj.size(); ++t) {
    EXPECT_TRUE(f.space.IsValid(traj.positions[t])) << "t=" << t;
  }
  // Network distance between consecutive samples never exceeds the speed.
  for (size_t t = 1; t < traj.size(); t += 25) {
    EXPECT_LE(f.space.Distance(traj.positions[t - 1], traj.positions[t]),
              40.0 + 1e-6)
        << "t=" << t;
  }
}

TEST(NetworkSimTest, EndToEndInvariantHolds) {
  NetFixture f(14, 6, 6);
  Rng rng(144);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 40; ++i) pois.push_back(RandomEdgePosition(f.space, &rng));
  const NetworkMpn engine(&f.space, pois);
  std::vector<NetworkTrajectory> trajs;
  for (int i = 0; i < 3; ++i) {
    trajs.push_back(
        GenerateNetworkTrajectory(f.space, f.network, 25.0, 250, &rng));
  }
  const std::vector<const NetworkTrajectory*> group = {&trajs[0], &trajs[1],
                                                       &trajs[2]};
  for (Objective obj : {Objective::kMax, Objective::kSum}) {
    const NetworkSimMetrics metrics =
        SimulateNetworkMpn(f.space, engine, group, obj,
                           /*check_correctness=*/true);
    EXPECT_EQ(metrics.timestamps, 250u);
    EXPECT_GT(metrics.updates, 0u);
    EXPECT_LT(metrics.updates, 250u);  // balls must save some updates
  }
}

TEST(NetworkSimTest, SafeRegionsBeatPerTickReporting) {
  NetFixture f(15);
  Rng rng(155);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 80; ++i) pois.push_back(RandomEdgePosition(f.space, &rng));
  const NetworkMpn engine(&f.space, pois);
  std::vector<NetworkTrajectory> trajs;
  for (int i = 0; i < 2; ++i) {
    trajs.push_back(
        GenerateNetworkTrajectory(f.space, f.network, 15.0, 600, &rng));
  }
  const std::vector<const NetworkTrajectory*> group = {&trajs[0], &trajs[1]};
  const NetworkSimMetrics metrics =
      SimulateNetworkMpn(f.space, engine, group, Objective::kMax);
  EXPECT_LT(metrics.UpdateFrequency(), 0.5);
}

}  // namespace
}  // namespace mpn
