// Lemma-1 verification and dominant-distance tests, including the
// no-false-positives property against sampled location instances.
#include <gtest/gtest.h>

#include "mpn/verify.h"
#include "msr_test_util.h"
#include "util/rng.h"

namespace mpn {
namespace {

using testutil::IsOptimalMeetingPoint;
using testutil::SampleRegion;

SafeRegion CircleAt(double x, double y, double r) {
  return SafeRegion::MakeCircle(Circle({x, y}, r));
}

TEST(DominantDistanceTest, MatchesDefinition5) {
  // Two circular regions; dominant distances are maxima of per-region
  // min/max distances.
  std::vector<SafeRegion> regions = {CircleAt(0, 0, 1), CircleAt(10, 0, 2)};
  const Point p{5, 0};
  EXPECT_DOUBLE_EQ(DominantMinDist(regions, p), 4.0);  // max(4, 3)
  EXPECT_DOUBLE_EQ(DominantMaxDist(regions, p), 7.0);  // max(6, 7)
}

TEST(VerifyLemma1Test, PaperFigure6aAnalogue) {
  // po is close to all regions; p1 is far: Verify must accept.
  std::vector<SafeRegion> regions = {CircleAt(0, 0, 1), CircleAt(4, 0, 1),
                                     CircleAt(2, 3, 1)};
  const Point po{2, 1};
  const Point p_far{100, 100};
  EXPECT_TRUE(VerifyLemma1(regions, po, p_far));
  // A point inside the cluster can violate the conservative test.
  const Point p_near{2, 0.5};
  EXPECT_FALSE(VerifyLemma1(regions, po, p_near));
}

TEST(VerifyLemma1Test, FalseNegativeOfFigure6b) {
  // Construct the Fig. 6b phenomenon: a region whose min and max distances
  // are realized by different corners, failing Lemma 1 even though every
  // actual instance is fine. Region R2 is a wide tile; po and p1 sit on
  // opposite sides.
  TileRegion wide({0, 0}, 10.0);
  wide.Add(GridTile{0, 0, 0});
  std::vector<SafeRegion> regions = {SafeRegion::MakeTiles(wide)};
  const Point po{-6, 0};
  const Point p1{6.2, 0};
  // ||po,R||_top = dist to far right corner; ||p1,R||_bot = dist to right
  // edge; the conservative test fails...
  EXPECT_FALSE(VerifyLemma1(regions, po, p1));
  // ...although for every sampled location l in R, po may still win or not —
  // the point of the test is only that Lemma 1 is conservative, which the
  // soundness property below establishes.
}

TEST(VerifyLemma1Test, NoFalsePositivesOnSampledInstances) {
  Rng rng(7001);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const size_t m = static_cast<size_t>(rng.UniformInt(1, 4));
    std::vector<SafeRegion> regions;
    std::vector<Point> centers;
    for (size_t i = 0; i < m; ++i) {
      const Point c{rng.Uniform(0, 100), rng.Uniform(0, 100)};
      centers.push_back(c);
      regions.push_back(
          SafeRegion::MakeCircle(Circle(c, rng.Uniform(0.5, 8))));
    }
    const Point po{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const Point p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    if (!VerifyLemma1(regions, po, p)) continue;
    ++accepted;
    // Accepted: po's dominant distance must be <= p's for all instances.
    for (int s = 0; s < 50; ++s) {
      std::vector<Point> locations;
      for (const SafeRegion& r : regions) {
        locations.push_back(SampleRegion(r, &rng));
      }
      const double d_po = AggDist(po, locations, Objective::kMax);
      const double d_p = AggDist(p, locations, Objective::kMax);
      EXPECT_LE(d_po, d_p + 1e-9) << "trial " << trial;
    }
  }
  EXPECT_GT(accepted, 20);  // the test must exercise the accepting branch
}

TEST(VerifySumTest, NoFalsePositivesOnSampledInstances) {
  Rng rng(7002);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const size_t m = static_cast<size_t>(rng.UniformInt(1, 4));
    std::vector<SafeRegion> regions;
    for (size_t i = 0; i < m; ++i) {
      const Point c{rng.Uniform(0, 100), rng.Uniform(0, 100)};
      regions.push_back(
          SafeRegion::MakeCircle(Circle(c, rng.Uniform(0.5, 8))));
    }
    const Point po{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const Point p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    if (!VerifySumConservative(regions, po, p)) continue;
    ++accepted;
    for (int s = 0; s < 50; ++s) {
      std::vector<Point> locations;
      for (const SafeRegion& r : regions) {
        locations.push_back(SampleRegion(r, &rng));
      }
      EXPECT_LE(AggDist(po, locations, Objective::kSum),
                AggDist(p, locations, Objective::kSum) + 1e-9)
          << "trial " << trial;
    }
  }
  EXPECT_GT(accepted, 20);
}

TEST(VerifyTest, DispatchesOnObjective) {
  std::vector<SafeRegion> regions = {CircleAt(0, 0, 1), CircleAt(2, 0, 1)};
  const Point po{1, 0};
  const Point far{50, 0};
  EXPECT_EQ(VerifyConservative(regions, po, far, Objective::kMax),
            VerifyLemma1(regions, po, far));
  EXPECT_EQ(VerifyConservative(regions, po, far, Objective::kSum),
            VerifySumConservative(regions, po, far));
}

TEST(TileRegionTest, ContainmentAndDistances) {
  TileRegion region({5, 5}, 2.0);  // origin (4,4), level-0 cell side 2
  region.Add(GridTile{0, 0, 0});   // [4,6]x[4,6]
  region.Add(GridTile{0, 1, 0});   // [6,8]x[4,6]
  EXPECT_TRUE(region.Contains({5, 5}));
  EXPECT_TRUE(region.Contains({7.9, 4.1}));
  EXPECT_FALSE(region.Contains({3.9, 5}));
  EXPECT_FALSE(region.Contains({5, 6.1}));
  // MinDist: nearest tile; MaxDist: farthest corner over all tiles.
  EXPECT_DOUBLE_EQ(region.MinDist({3, 5}), 1.0);
  EXPECT_DOUBLE_EQ(region.MaxDist({4, 5}),
                   Dist({4, 5}, {8, 4}));  // far corner of the second tile
  const Rect b = region.Bounds();
  EXPECT_EQ(b.lo, Vec2(4, 4));
  EXPECT_EQ(b.hi, Vec2(8, 6));
}

TEST(TileRegionTest, SubdivisionGeometry) {
  TileRegion region({0, 0}, 4.0);  // origin (-2,-2)
  const GridTile root{0, 0, 0};
  GridTile kids[4];
  root.Children(kids);
  // Children tile the parent exactly.
  const Rect parent = region.TileRect(root);
  double area = 0.0;
  for (const GridTile& k : kids) {
    const Rect r = region.TileRect(k);
    EXPECT_TRUE(parent.ContainsRect(r));
    area += r.Area();
  }
  EXPECT_DOUBLE_EQ(area, parent.Area());
  // Grandchildren of the first child stay inside it.
  GridTile grand[4];
  kids[0].Children(grand);
  for (const GridTile& g : grand) {
    EXPECT_TRUE(region.TileRect(kids[0]).ContainsRect(region.TileRect(g)));
  }
}

TEST(TileRegionTest, InitialTileCenteredOnUser) {
  const Point user{12.5, -3.25};
  TileRegion region(user, 3.0);
  region.Add(GridTile{0, 0, 0});
  const Rect r = region.rects()[0];
  EXPECT_DOUBLE_EQ(r.Center().x, user.x);
  EXPECT_DOUBLE_EQ(r.Center().y, user.y);
  EXPECT_TRUE(region.Contains(user));
}

}  // namespace
}  // namespace mpn
