// Elastic recovery tests (ctest label `cluster`): the supervisor must
// survive worker deaths at admission, mid-drain and between serving-loop
// Waits with a ResultDigest() bit-identical to an uninterrupted
// single-process Engine; bounded restarts must degrade gracefully to a
// per-shard error naming the lost groups (never a hang); RecoveryStats
// must account restarts, re-admissions and snapshot restores; and the
// crash-injection plumbing (KillWorkerAt, MPN_CRASH_PLAN, CrashPlan)
// must be deterministic in virtual time.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/cluster.h"
#include "engine/engine.h"
#include "engine/ipc.h"
#include "traj/generators.h"
#include "util/rng.h"

namespace mpn {
namespace {

const Rect kWorld({0, 0}, {20000, 20000});

struct World {
  std::vector<Point> pois;
  RTree tree;
  std::vector<Trajectory> trajs;
};

World MakeWorld(size_t n_pois, size_t n_groups, size_t timestamps,
                uint64_t seed) {
  World w;
  Rng rng(seed);
  PoiOptions popt;
  popt.world = kWorld;
  popt.clusters = 12;
  w.pois = GeneratePois(n_pois, popt, &rng);
  w.tree = RTree::BulkLoad(w.pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = 60.0;
  const RandomWalkGenerator gen(wopt);
  w.trajs = gen.GenerateGroupedFleet(n_groups * 3, 3, 500.0, timestamps, &rng);
  return w;
}

EngineOptions MakeEngineOptions(size_t threads) {
  EngineOptions opt;
  opt.threads = threads;
  opt.sim.server.method = Method::kTileD;
  opt.sim.server.alpha = 10;
  return opt;
}

std::vector<const Trajectory*> GroupOf(const World& w, size_t g) {
  return {&w.trajs[3 * g], &w.trajs[3 * g + 1], &w.trajs[3 * g + 2]};
}

ClusterOptions MakeClusterOptions(size_t workers, size_t threads) {
  ClusterOptions opt;
  opt.workers = workers;
  opt.engine = MakeEngineOptions(threads);
  return opt;
}

// --- CrashPlan plumbing ------------------------------------------------------

TEST(CrashPlanTest, ParsesShardTimestampPairsAndConsumesFifoPerShard) {
  CrashPlan plan = CrashPlan::Parse(" 0:5, 1:10 ,0:7,");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.Take(0), 5u);   // first event for shard 0
  EXPECT_EQ(plan.Take(0), 7u);   // second incarnation's event
  EXPECT_EQ(plan.Take(0), CrashPlan::kNoCrash);
  EXPECT_EQ(plan.Take(1), 10u);
  EXPECT_TRUE(plan.empty());

  EXPECT_THROW(CrashPlan::Parse("5"), std::runtime_error);
  EXPECT_THROW(CrashPlan::Parse("a:5"), std::runtime_error);
  EXPECT_THROW(CrashPlan::Parse("0:5x"), std::runtime_error);
  EXPECT_THROW(CrashPlan::Parse(":5"), std::runtime_error);
  EXPECT_TRUE(CrashPlan::Parse("").empty());
}

// --- Digest bit-identity through recovery ------------------------------------

TEST(ClusterRecoveryTest, KilledWorkerRecoversWithBitIdenticalDigest) {
  const size_t kGroups = 6;
  const World w = MakeWorld(250, kGroups, 100, 0xEC0001);
  SessionTuning drop;
  drop.mailbox_capacity = 1;
  drop.mailbox_policy = MailboxPolicy::kDropOldest;
  // Group 1's retirement rides in the tuning: a live RetireSession(1, 30)
  // issued while the run is in flight races the session's virtual clock
  // (the request only stops *future* advances), so on a loaded machine —
  // e.g. under MPN_MEMORY_BUDGET, where spill work widens the window —
  // the session can tick past 30 before the frame lands and the digest
  // legitimately differs from the reference. tuning.retire_at truncates
  // deterministically; a separate live retire below (at a timestamp past
  // the truncation point, so it cannot move results) still exercises the
  // coordinator's record-and-fold-on-replay path.
  SessionTuning retire30;
  retire30.retire_at = 30;
  const auto tuning_of = [&](size_t g) {
    if (g == 1) return retire30;
    return g == 2 ? drop : SessionTuning();
  };

  // Uninterrupted single-process reference (destroyed before any fork).
  uint64_t ref_digest = 0;
  double ref_messages_sum = 0.0, ref_recomputes_sum = 0.0;
  size_t ref_rounds = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2));
    for (size_t g = 0; g < kGroups; ++g) {
      engine.AdmitSession(GroupOf(w, g), tuning_of(g));
    }
    engine.Start();
    engine.RetireSession(1, 60);  // folded to min(60, 30): digest no-op
    engine.Shutdown();
    ref_digest = engine.ResultDigest();
    ref_messages_sum = engine.round_stats().messages_per_round.Sum();
    ref_recomputes_sum = engine.round_stats().recomputes_per_round.Sum();
    ref_rounds = engine.round_stats().rounds;
  }

  // Kill each shard at admission (t = 0), mid-drain (t = 50) and near the
  // end of the horizon (t = 97): the supervisor must fork a replacement,
  // replay the snapshot (admits + the retirement) and land on exactly the
  // uninterrupted digest and round-stat totals.
  struct Kill {
    size_t shard;
    size_t timestamp;
  };
  for (const Kill kill : {Kill{0, 0}, Kill{1, 50}, Kill{0, 97}}) {
    SCOPED_TRACE("kill shard " + std::to_string(kill.shard) + " at t=" +
                 std::to_string(kill.timestamp));
    ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 2));
    cluster.KillWorkerAt(kill.shard, kill.timestamp);
    cluster.Start();
    for (size_t g = 0; g < kGroups; ++g) {
      cluster.AdmitSession(GroupOf(w, g), tuning_of(g));
    }
    cluster.RetireSession(1, 60);  // folded to min(60, 30): digest no-op
    cluster.Wait();
    EXPECT_EQ(cluster.ResultDigest(), ref_digest);
    EXPECT_EQ(cluster.round_stats().rounds, ref_rounds);
    EXPECT_EQ(cluster.round_stats().messages_per_round.Sum(),
              ref_messages_sum);
    EXPECT_EQ(cluster.round_stats().recomputes_per_round.Sum(),
              ref_recomputes_sum);
    const ClusterEngine::RecoveryStats stats = cluster.recovery_stats();
    EXPECT_EQ(stats.restarts, 1u);
    EXPECT_EQ(stats.shards_lost, 0u);
    // A t=0 kill can surface while admissions are still streaming, in
    // which case the replay covers only the groups admitted so far; later
    // kills always replay the shard's full census (3 of 6 groups).
    EXPECT_GE(stats.sessions_readmitted, 2u);
    EXPECT_LE(stats.sessions_readmitted, 3u);
    EXPECT_EQ(stats.sessions_restored, 0u);  // nothing was drained yet
    EXPECT_GE(stats.frames_replayed, stats.sessions_readmitted);
    EXPECT_FALSE(cluster.shard_lost(kill.shard));
    cluster.Shutdown();
    EXPECT_EQ(cluster.ResultDigest(), ref_digest);  // frozen, still valid
  }
}

TEST(ClusterRecoveryTest, KillBetweenWaitsRestoresFinalsFromSnapshot) {
  const size_t kGroups = 6;
  const World w = MakeWorld(250, kGroups, 90, 0xEC0002);

  uint64_t ref_digest = 0;
  double ref_messages_sum = 0.0, ref_recomputes_sum = 0.0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2));
    engine.Start();
    for (size_t g = 0; g < 3; ++g) engine.AdmitSession(GroupOf(w, g));
    engine.Wait();
    for (size_t g = 3; g < kGroups; ++g) engine.AdmitSession(GroupOf(w, g));
    engine.Shutdown();
    ref_digest = engine.ResultDigest();
    ref_messages_sum = engine.round_stats().messages_per_round.Sum();
    ref_recomputes_sum = engine.round_stats().recomputes_per_round.Sum();
  }

  ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 2));
  cluster.Start();
  for (size_t g = 0; g < 3; ++g) cluster.AdmitSession(GroupOf(w, g));
  cluster.Wait();
  const uint64_t wave1_updates = cluster.session_metrics(1).updates;

  // Shard 1 dies between Waits. Its wave-1 session (global id 1) is final
  // — the supervisor must restore it from the coordinator snapshot, not
  // recompute it — while the wave-2 sessions (ids 3, 5) are re-admitted
  // and recomputed on the replacement.
  cluster.KillWorkerForTest(1);
  for (size_t g = 3; g < kGroups; ++g) cluster.AdmitSession(GroupOf(w, g));
  cluster.Wait();

  EXPECT_EQ(cluster.ResultDigest(), ref_digest);
  EXPECT_EQ(cluster.session_metrics(1).updates, wave1_updates);
  // Round stats must re-aggregate to the uninterrupted totals: id 1's
  // per-timestamp contribution comes from the dead incarnation's drained
  // history (slot_base), ids 3/5's from the replacement's recomputation.
  EXPECT_EQ(cluster.round_stats().messages_per_round.Sum(), ref_messages_sum);
  EXPECT_EQ(cluster.round_stats().recomputes_per_round.Sum(),
            ref_recomputes_sum);
  const ClusterEngine::RecoveryStats stats = cluster.recovery_stats();
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.sessions_restored, 1u);  // id 1, final as of wave 1
  EXPECT_GE(stats.sessions_readmitted, 1u);
  EXPECT_LE(stats.sessions_readmitted, 2u);
  EXPECT_EQ(stats.shards_lost, 0u);
  cluster.Shutdown();
}

// --- Graceful degradation ----------------------------------------------------

TEST(ClusterRecoveryTest, ExhaustedRestartsDegradeToErrorNamingLostGroups) {
  const size_t kGroups = 4;
  const World w = MakeWorld(200, kGroups, 80, 0xEC0003);
  ClusterOptions opt = MakeClusterOptions(2, 1);
  opt.recovery.max_restarts = 1;
  ClusterEngine cluster(&w.pois, &w.tree, opt);
  // Two planned crashes on shard 1: the initial incarnation and its only
  // allowed replacement both die, exhausting the budget.
  cluster.KillWorkerAt(1, 10);
  cluster.KillWorkerAt(1, 10);
  cluster.Start();
  for (size_t g = 0; g < kGroups; ++g) cluster.AdmitSession(GroupOf(w, g));
  try {
    cluster.Wait();
    FAIL() << "Wait() must surface the degraded shard";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    EXPECT_NE(what.find("restart budget exhausted"), std::string::npos)
        << what;
    // The error must name the groups lost with the shard (global ids 1
    // and 3 route to shard 1 of 2).
    EXPECT_NE(what.find("groups lost: [1, 3]"), std::string::npos) << what;
  }
  EXPECT_TRUE(cluster.shard_lost(1));
  EXPECT_FALSE(cluster.shard_lost(0));
  const ClusterEngine::RecoveryStats stats = cluster.recovery_stats();
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.shards_lost, 1u);

  // Healthy shard 0 drained and stays fully readable.
  EXPECT_EQ(cluster.session_metrics(0).timestamps, 80u);
  EXPECT_EQ(cluster.session_metrics(2).timestamps, 80u);
  EXPECT_TRUE(cluster.session_has_result(0));
  // Lost sessions degrade to empty results instead of hanging or lying.
  EXPECT_FALSE(cluster.session_has_result(1));

  // Admissions keep working for healthy shards (id 4 -> shard 0) and
  // throw the shard's degradation error for the lost one (id 5 -> 1).
  EXPECT_NO_THROW(cluster.AdmitSession(GroupOf(w, 0)));
  try {
    cluster.AdmitSession(GroupOf(w, 1));
    FAIL() << "admission to a lost shard must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard 1"), std::string::npos);
  }
  // Every later drain re-reports the degradation (no silent staleness),
  // while still refreshing the healthy shards — and never hangs
  // (implicitly checked by the ctest timeout).
  EXPECT_THROW(cluster.Wait(), std::runtime_error);
  EXPECT_EQ(cluster.session_metrics(4).timestamps, 80u);
  EXPECT_THROW(cluster.Shutdown(), std::runtime_error);  // still graceful
}

// --- Env-driven crash plan + quiescent stats ---------------------------------

TEST(ClusterRecoveryTest, EnvCrashPlanArmsTheSameDeterministicKill) {
  const World w = MakeWorld(200, 2, 60, 0xEC0004);
  uint64_t ref_digest = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(1));
    engine.AdmitSession(GroupOf(w, 0));
    engine.AdmitSession(GroupOf(w, 1));
    engine.Run();
    ref_digest = engine.ResultDigest();
  }

  setenv("MPN_CRASH_PLAN", "0:20", /*overwrite=*/1);
  ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 1));
  unsetenv("MPN_CRASH_PLAN");  // consumed by the constructor
  cluster.AdmitSession(GroupOf(w, 0));
  cluster.AdmitSession(GroupOf(w, 1));
  cluster.Run();
  EXPECT_EQ(cluster.ResultDigest(), ref_digest);
  EXPECT_EQ(cluster.recovery_stats().restarts, 1u);
}

TEST(ClusterRecoveryTest, UninterruptedRunReportsZeroRecoveryStats) {
  const World w = MakeWorld(200, 2, 50, 0xEC0005);
  ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 1));
  cluster.AdmitSession(GroupOf(w, 0));
  cluster.AdmitSession(GroupOf(w, 1));
  cluster.Start();
  EXPECT_THROW(cluster.KillWorkerAt(0, 10), std::logic_error);  // post-Start
  cluster.Shutdown();
  const ClusterEngine::RecoveryStats stats = cluster.recovery_stats();
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.sessions_readmitted, 0u);
  EXPECT_EQ(stats.sessions_restored, 0u);
  EXPECT_EQ(stats.frames_replayed, 0u);
  EXPECT_EQ(stats.shards_lost, 0u);
  EXPECT_EQ(stats.recovery_seconds, 0.0);
  EXPECT_FALSE(cluster.shard_lost(0));
  EXPECT_FALSE(cluster.shard_lost(1));
}

}  // namespace
}  // namespace mpn
