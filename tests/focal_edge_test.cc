// Adversarial geometry edge cases for the focal-difference minimization,
// including a regression suite that quantifies the erratum in the paper's
// Fig.-12 evaluation-point set (corners + focal-axis crossings miss
// edge-interior tangency minima; see DESIGN.md §4c).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geom/focal_diff.h"
#include "util/rng.h"

namespace mpn {
namespace {

// The paper's (incomplete) evaluation set: corners plus focal-axis
// crossings. Used only to demonstrate the erratum.
double PaperMinFocalDiff(const Point& pp, const Point& po, const Rect& r) {
  double best = 1e300;
  for (int i = 0; i < 4; ++i) best = std::min(best, FocalDiff(pp, po, r.Corner(i)));
  // Axis-rect intersections via dense parameter scan of the focal line
  // (adequate for a test-only reference).
  const Vec2 d = po - pp;
  if (d.Norm2() > 0) {
    for (int k = -4000; k <= 4000; ++k) {
      const Point l = pp + d * (static_cast<double>(k) / 200.0);
      if (r.Contains(l)) {
        // Clamp to boundary-ish evaluation like the paper's construction.
        best = std::min(best, FocalDiff(pp, po, l));
      }
    }
  }
  return best;
}

TEST(FocalEdgeTest, PaperEvaluationSetMissesTangencyMinima) {
  // Sweep random configurations: the Fig.-12 evaluation set (corners +
  // axis crossings) must never be *below* the exact minimum, and for some
  // configurations it must sit strictly above it (the erratum: it misses
  // edge-interior tangency minima).
  Rng rng(2024);
  int misses = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const Point po{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    Point pp{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    if (pp == po) pp.x += 1.0;
    const Point lo{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    const Rect r(lo,
                 {lo.x + rng.Uniform(0.05, 4), lo.y + rng.Uniform(0.05, 4)});
    const double exact = MinFocalDiffOverRect(pp, po, r);
    const double paper = PaperMinFocalDiff(pp, po, r);
    EXPECT_LE(exact, paper + 1e-9) << "trial " << trial;
    if (paper > exact + 1e-3 * (1.0 + Dist(pp, po))) ++misses;
  }
  EXPECT_GT(misses, 3) << "expected the corner+axis set to miss tangency "
                          "minima on some configurations";
}

TEST(FocalEdgeTest, DegenerateRectIsPoint) {
  const Point po{2, 3}, pp{-1, 4};
  const Rect point_rect({5, 5}, {5, 5});
  EXPECT_NEAR(MinFocalDiffOverRect(pp, po, point_rect),
              FocalDiff(pp, po, {5, 5}), 1e-12);
}

TEST(FocalEdgeTest, DegenerateRectIsSegment) {
  Rng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    const Point po{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point pp{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    if (po == pp) continue;
    // Horizontal segment as a zero-height rect.
    const double y = rng.Uniform(-5, 5);
    const double x0 = rng.Uniform(-5, 0), x1 = x0 + rng.Uniform(0.5, 5);
    const Rect seg({x0, y}, {x1, y});
    const double exact = MinFocalDiffOverRect(pp, po, seg);
    double sampled = 1e300;
    for (int i = 0; i <= 2000; ++i) {
      const Point l{x0 + (x1 - x0) * i / 2000.0, y};
      sampled = std::min(sampled, FocalDiff(pp, po, l));
    }
    EXPECT_LE(exact, sampled + 1e-9) << "trial " << trial;
    EXPECT_NEAR(exact, sampled, 5e-3) << "trial " << trial;
  }
}

TEST(FocalEdgeTest, FociInsideRect) {
  // Both foci strictly inside: the global minimum -||pp,po|| is attained on
  // the axis ray behind pp, which exits through the boundary.
  const Point po{0.5, 0.0}, pp{-0.5, 0.0};
  const Rect r({-2, -2}, {2, 2});
  EXPECT_NEAR(MinFocalDiffOverRect(pp, po, r), -1.0, 1e-12);
}

TEST(FocalEdgeTest, RectFarFromBothFoci) {
  // Far away, g approaches the projection difference; exact min must still
  // lower-bound samples.
  const Point po{0, 0}, pp{1, 0};
  const Rect r({1000, 1000}, {1001, 1001});
  const double exact = MinFocalDiffOverRect(pp, po, r);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Point l{rng.Uniform(r.lo.x, r.hi.x), rng.Uniform(r.lo.y, r.hi.y)};
    EXPECT_LE(exact, FocalDiff(pp, po, l) + 1e-9);
  }
  EXPECT_LT(std::abs(exact), 1.0 + 1e-9);  // |g| <= ||pp,po||
}

TEST(FocalEdgeTest, SymmetryUnderFocusSwap) {
  // min over r of (d(a,l) - d(b,l)) == -max over r of (d(b,l) - d(a,l));
  // check the weaker sampled version: swapped-foci minima are consistent
  // with sampled extremes.
  Rng rng(505);
  for (int trial = 0; trial < 60; ++trial) {
    const Point a{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    Point b{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    if (a == b) b.x += 1;
    const Point lo{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    const Rect r(lo, {lo.x + rng.Uniform(0.2, 3), lo.y + rng.Uniform(0.2, 3)});
    const double min_ab = MinFocalDiffOverRect(a, b, r);
    const double min_ba = MinFocalDiffOverRect(b, a, r);
    // g_ab = -g_ba pointwise, so min_ab = -max(g_ba) <= -min_ba only when
    // both are <= 0... the robust invariant: min_ab + min_ba <= 0 (their
    // pointwise sum is 0 and minima are at most any common point's values).
    EXPECT_LE(min_ab + min_ba, 1e-9) << "trial " << trial;
    // And both are bounded by the focal distance.
    const double dist = Dist(a, b);
    EXPECT_GE(min_ab, -dist - 1e-9);
    EXPECT_GE(min_ba, -dist - 1e-9);
  }
}

TEST(FocalEdgeTest, MinIsMonotoneUnderRectShrink) {
  // A sub-rectangle can only raise (or keep) the minimum.
  Rng rng(606);
  for (int trial = 0; trial < 60; ++trial) {
    const Point po{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    Point pp{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    if (pp == po) pp.y += 0.7;
    const Point lo{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    const Rect outer(lo,
                     {lo.x + rng.Uniform(1, 4), lo.y + rng.Uniform(1, 4)});
    // Random quadrant of the outer rect.
    const Point c = outer.Center();
    const Rect inner = (trial % 4 == 0)   ? Rect(outer.lo, c)
                       : (trial % 4 == 1) ? Rect({c.x, outer.lo.y},
                                                 {outer.hi.x, c.y})
                       : (trial % 4 == 2) ? Rect({outer.lo.x, c.y},
                                                 {c.x, outer.hi.y})
                                          : Rect(c, outer.hi);
    EXPECT_GE(MinFocalDiffOverRect(pp, po, inner) + 1e-9,
              MinFocalDiffOverRect(pp, po, outer))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace mpn
