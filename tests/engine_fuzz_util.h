// Shared infrastructure for the seeded lifecycle replays: a deterministic
// world + plan generator and replay drivers over Engine / ClusterEngine.
// Used by engine_fuzz_test.cc (scheduling-invariance fuzzing) and
// kernel_differential_test.cc (scalar vs SoA verification kernels); both
// assert digest bit-identity over the same seed-derived plans.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/engine.h"
#include "index/packed_rtree.h"
#include "index/spatial_index.h"
#include "traj/generators.h"
#include "util/rng.h"

namespace mpn {
namespace fuzz {

inline const Rect kWorld({0, 0}, {20000, 20000});

struct World {
  std::vector<Point> pois;
  RTree tree;
  PackedRTree packed_str;
  PackedRTree packed_hilbert;
  std::vector<Trajectory> trajs;
  size_t group_size = 0;

  /// The same POI set behind the requested index backend; digests must not
  /// care which one the replay runs on (index_differential_test.cc).
  SpatialIndex Index(IndexKind kind) const {
    switch (kind) {
      case IndexKind::kPackedStr: return SpatialIndex(&packed_str);
      case IndexKind::kPackedHilbert: return SpatialIndex(&packed_hilbert);
      case IndexKind::kDynamic: break;
    }
    return SpatialIndex(&tree);
  }
};

/// One planned session: which trajectories, which tuning, which admission
/// wave, and an optional deterministic pre-start retirement.
struct PlannedSession {
  size_t group = 0;
  SessionTuning tuning;
  size_t wave = 0;
  bool prestart_retire = false;
  size_t prestart_retire_at = 0;
};

/// One planned worker death for the cluster replays: shard_slot folds onto
/// the actual shard count (shard_slot % workers), the timestamp is the
/// deterministic virtual kill point (ClusterEngine::KillWorkerAt).
struct PlannedCrash {
  size_t shard_slot = 0;
  size_t timestamp = 0;
};

/// One planned transport fault (ClusterEngine::InjectFaultAt): shard_slot
/// folds like PlannedCrash, frame is the 0-based frame-op index on the
/// shard's data channel, kind is any FaultKind (engine/transport.h).
struct PlannedFault {
  size_t shard_slot = 0;
  size_t frame = 0;
  FaultKind kind = FaultKind::kCorrupt;
};

struct FuzzPlan {
  size_t waves = 1;
  size_t horizon = 0;
  /// Per wave: drain (serving-loop Wait) before admitting it, or pour the
  /// admissions in mid-run while earlier sessions are still draining.
  std::vector<uint8_t> drain_before;
  std::vector<PlannedSession> sessions;
  std::vector<PlannedCrash> crashes;
  std::vector<PlannedFault> faults;
  /// Run the cluster replays over loopback TCP instead of the AF_UNIX
  /// socketpair — the digest must not care about the byte backend.
  bool tcp = false;
};

inline World MakeFuzzWorld(Rng* rng, size_t n_groups, size_t group_size,
                           size_t timestamps) {
  World w;
  w.group_size = group_size;
  PoiOptions popt;
  popt.world = kWorld;
  popt.clusters = static_cast<size_t>(rng->UniformInt(4, 16));
  w.pois = GeneratePois(static_cast<size_t>(rng->UniformInt(120, 280)), popt,
                        rng);
  w.tree = RTree::BulkLoad(w.pois);
  w.packed_str = PackedRTree::Build(w.pois, PackAlgorithm::kStr);
  w.packed_hilbert = PackedRTree::Build(w.pois, PackAlgorithm::kHilbert);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = rng->Uniform(30.0, 90.0);
  const RandomWalkGenerator gen(wopt);
  w.trajs = gen.GenerateGroupedFleet(n_groups * group_size, group_size,
                                     rng->Uniform(300.0, 900.0), timestamps,
                                     rng);
  return w;
}

inline FuzzPlan MakeFuzzPlan(Rng* rng, size_t n_groups, size_t horizon) {
  FuzzPlan plan;
  plan.waves = static_cast<size_t>(rng->UniformInt(1, 3));
  plan.horizon = horizon;
  plan.drain_before.assign(plan.waves, 0);
  for (size_t wave = 1; wave < plan.waves; ++wave) {
    plan.drain_before[wave] = rng->Bernoulli(0.5) ? 1 : 0;
  }
  for (size_t g = 0; g < n_groups; ++g) {
    PlannedSession s;
    s.group = g;
    s.wave = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(plan.waves) - 1));
    const size_t capacities[] = {0, 1, 2, 16};
    s.tuning.mailbox_capacity =
        capacities[static_cast<size_t>(rng->UniformInt(0, 3))];
    if (rng->Bernoulli(0.3)) {
      // Drop-oldest backpressure: overflowing payloads are dropped and
      // force-recomputed at replay — a digest no-op by construction.
      s.tuning.mailbox_policy = MailboxPolicy::kDropOldest;
    }
    if (rng->Bernoulli(0.3)) {
      // Deterministic retirement churn: truncated horizon at admission.
      s.tuning.retire_at = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(horizon)));
    }
    if (rng->Bernoulli(0.25)) {
      // Wall-clock-only straggler injection; must never move the digest.
      s.tuning.recompute_cost_factor = rng->Uniform(1.5, 3.0);
    }
    if (s.wave == 0 && rng->Bernoulli(0.2)) {
      // Retire through the API instead of the tuning — deterministic
      // because it lands before Start.
      s.prestart_retire = true;
      s.prestart_retire_at = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(horizon)));
    }
    plan.sessions.push_back(s);
  }
  const size_t n_crashes = static_cast<size_t>(rng->UniformInt(0, 2));
  for (size_t i = 0; i < n_crashes; ++i) {
    PlannedCrash crash;
    crash.shard_slot = static_cast<size_t>(rng->UniformInt(0, 3));
    crash.timestamp = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(horizon)));
    plan.crashes.push_back(crash);
  }
  // 0-2 transport faults layered on top of the crashes: byte shaping,
  // frame damage or hangs at deterministic frame indices — none of which
  // may move the digest (drawn after the crashes so pre-fault seeds keep
  // their worlds and schedules).
  const size_t n_faults = static_cast<size_t>(rng->UniformInt(0, 2));
  for (size_t i = 0; i < n_faults; ++i) {
    PlannedFault fault;
    fault.shard_slot = static_cast<size_t>(rng->UniformInt(0, 3));
    fault.frame = static_cast<size_t>(rng->UniformInt(0, 14));
    const FaultKind kinds[] = {FaultKind::kShortIo, FaultKind::kEintrStorm,
                               FaultKind::kCorrupt, FaultKind::kTruncate,
                               FaultKind::kStall, FaultKind::kReset};
    fault.kind = kinds[rng->UniformInt(0, 5)];
    plan.faults.push_back(fault);
  }
  plan.tcp = rng->Bernoulli(0.5);
  return plan;
}

inline std::vector<const Trajectory*> GroupOf(const World& w, size_t g) {
  std::vector<const Trajectory*> group;
  for (size_t i = 0; i < w.group_size; ++i) {
    group.push_back(&w.trajs[g * w.group_size + i]);
  }
  return group;
}

inline EngineOptions MakeEngineOptions(
    size_t threads, KernelKind kernel = KernelKind::kSoA,
    bool parallel_verify = false) {
  EngineOptions opt;
  opt.threads = threads;
  opt.parallel_verify = parallel_verify;
  opt.sim.server.method = Method::kTileD;
  opt.sim.server.alpha = 10;
  opt.sim.server.kernel = kernel;
  return opt;
}

/// Replays the plan on `engine` (Engine or ClusterEngine share the
/// lifecycle API): wave 0 before Start, later waves between serving-loop
/// Wait() drains, Shutdown at the end. Admission order is the plan order
/// within each wave, so the digest stream is identical across replays.
template <typename EngineLike>
uint64_t Replay(EngineLike* engine, const World& w, const FuzzPlan& plan) {
  std::vector<uint32_t> ids(plan.sessions.size(), 0);
  const auto admit_wave = [&](size_t wave) {
    for (size_t i = 0; i < plan.sessions.size(); ++i) {
      const PlannedSession& s = plan.sessions[i];
      if (s.wave != wave) continue;
      ids[i] = engine->AdmitSession(GroupOf(w, s.group), s.tuning);
      if (s.prestart_retire) {
        engine->RetireSession(ids[i], s.prestart_retire_at);
      }
    }
  };
  admit_wave(0);
  engine->Start();
  for (size_t wave = 1; wave < plan.waves; ++wave) {
    // Either drain first (serving-loop rounds) or admit mid-run while
    // earlier sessions are still going — the digest must not care.
    if (plan.drain_before[wave] != 0) engine->Wait();
    admit_wave(wave);
  }
  engine->Shutdown();
  return engine->ResultDigest();
}

inline uint64_t RunEnginePlan(const World& w, const FuzzPlan& plan,
                              size_t threads,
                              KernelKind kernel = KernelKind::kSoA,
                              bool parallel_verify = false,
                              IndexKind index = IndexKind::kDynamic) {
  Engine engine(&w.pois, w.Index(index),
                MakeEngineOptions(threads, kernel, parallel_verify));
  return Replay(&engine, w, plan);
}

inline uint64_t RunClusterPlan(const World& w, const FuzzPlan& plan,
                               size_t workers, size_t threads,
                               KernelKind kernel = KernelKind::kSoA,
                               bool with_crashes = true,
                               IndexKind index = IndexKind::kDynamic) {
  ClusterOptions opt;
  opt.workers = workers;
  opt.engine = MakeEngineOptions(threads, kernel);
  // Two planned crashes plus two fatal transport faults can all fold onto
  // one shard; keep the budget above that so every seeded death recovers.
  opt.recovery.max_restarts = 6;
  opt.transport.kind =
      plan.tcp ? TransportKind::kTcpLoopback : TransportKind::kSocketPair;
  // Fast liveness so a seeded kStall costs ~2 s instead of the serving
  // defaults' ~4.5 s; the timeout stays generous enough that a loaded CI
  // box never false-kills a live worker.
  opt.transport.heartbeat_interval_ms = 100;
  opt.transport.heartbeat_timeout_ms = 500;
  opt.transport.heartbeat_miss_budget = 3;
  ClusterEngine cluster(&w.pois, w.Index(index), opt);
  if (with_crashes) {
    for (const PlannedCrash& crash : plan.crashes) {
      cluster.KillWorkerAt(crash.shard_slot % workers, crash.timestamp);
    }
    for (const PlannedFault& fault : plan.faults) {
      cluster.InjectFaultAt(fault.shard_slot % workers, fault.frame,
                            fault.kind);
    }
  }
  return Replay(&cluster, w, plan);
}

/// Seed list: `fallback` is the fixed ctest set, widened via the given
/// environment variable (a count or an explicit comma-separated list).
inline std::vector<uint64_t> SeedsFromEnv(const char* env_var,
                                          std::vector<uint64_t> fallback) {
  const char* env = std::getenv(env_var);
  if (env == nullptr || *env == '\0') return fallback;
  const std::string spec(env);
  std::vector<uint64_t> seeds;
  if (spec.find(',') != std::string::npos) {
    size_t pos = 0;
    while (pos < spec.size()) {
      const size_t comma = spec.find(',', pos);
      const std::string tok =
          spec.substr(pos, comma == std::string::npos ? spec.npos
                                                      : comma - pos);
      if (!tok.empty()) seeds.push_back(std::strtoull(tok.c_str(), nullptr, 0));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return seeds;
  }
  const unsigned long long count = std::strtoull(spec.c_str(), nullptr, 0);
  for (unsigned long long i = 0; i < count; ++i) {
    seeds.push_back(fallback.front() + i);
  }
  return seeds;
}

inline std::string SeedName(const testing::TestParamInfo<uint64_t>& info) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seed_%llx",
                static_cast<unsigned long long>(info.param));
  return buf;
}

}  // namespace fuzz
}  // namespace mpn
